// Package telemetry is the unified observability layer of the PM-octree
// stack: a goroutine-safe metrics registry (counters, gauges, histograms
// with quantiles), a phase-scoped span tracer recording wall time and
// modeled device time per phase, and machine-readable exporters — JSONL
// step timelines and Chrome trace_event JSON that loads in
// chrome://tracing or Perfetto.
//
// The package depends only on the standard library and, for the device
// adapters, on internal/nvbm. Every entry point is nil-safe: a nil
// *Tracer, *Span, *Observer, or *Trace turns the corresponding calls into
// no-ops, so instrumented hot paths pay a single pointer test when
// telemetry is off.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are goroutine-safe and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can move in both directions. The zero
// value is ready to use; all methods are goroutine-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d (compare-and-swap loop).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry is a named collection of metrics. Metric constructors are
// get-or-create, so independent subsystems can share one registry without
// coordination. All methods are goroutine-safe.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]func() float64{},
	}
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterFunc publishes a gauge whose value is computed on snapshot —
// the adapter hook that absorbs existing stat structs (nvbm.Stats,
// core.OpStats) without copying their counters. Re-registering a name
// replaces the function.
func (r *Registry) RegisterFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot is a point-in-time copy of every metric in a registry.
// Function gauges are evaluated at snapshot time and reported as gauges.
type Snapshot struct {
	Counters   map[string]uint64         `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot captures every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)+len(r.funcs)),
		Histograms: make(map[string]HistogramStats, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range r.funcs {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Stats()
	}
	return s
}

// Sub returns the interval delta s - earlier. Counter deltas saturate at
// zero (a counter missing from earlier, or reset between snapshots, never
// produces a wrapped value). Gauges are point-in-time quantities, so the
// later snapshot's values are kept. Histograms are differenced per bucket
// (saturating), and Count, Sum, Mean, and the quantiles are recomputed
// from the delta buckets, so the interval's P50/P95/P99 describe only the
// samples observed between the two snapshots. Min and Max cannot be
// differenced from bucket data; the delta keeps the interval's bucket
// bounds instead (first delta bucket's Lo, last one's Hi).
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramStats, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = satSub(v, earlier.Counters[name])
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = subHistogram(h, earlier.Histograms[name])
	}
	return out
}

// subHistogram computes the per-bucket interval delta h - e and
// re-derives the summary statistics from it.
func subHistogram(h, e HistogramStats) HistogramStats {
	// Earlier bucket counts keyed by lower bound: the layout is fixed, so
	// equal Lo means the same bucket.
	prev := make(map[uint64]uint64, len(e.Buckets))
	for _, b := range e.Buckets {
		prev[b.Lo] = b.Count
	}
	var d HistogramStats
	for _, b := range h.Buckets {
		b.Count = satSub(b.Count, prev[b.Lo])
		if b.Count == 0 {
			continue
		}
		d.Buckets = append(d.Buckets, b)
		d.Count += b.Count
	}
	d.Sum = satSub(h.Sum, e.Sum)
	if d.Count == 0 {
		return d
	}
	d.Min = d.Buckets[0].Lo
	d.Max = d.Buckets[len(d.Buckets)-1].Hi - 1
	d.Mean = float64(d.Sum) / float64(d.Count)
	d.P50 = d.Quantile(0.50)
	d.P95 = d.Quantile(0.95)
	d.P99 = d.Quantile(0.99)
	return d
}

// satSub returns a-b, clamped at zero.
func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// String renders the snapshot as a sorted human-readable block.
func (s Snapshot) String() string {
	var sb strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&sb, "%s: %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&sb, "%s: %g\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(&sb, "%s: n=%d sum=%d p50=%.0f p95=%.0f p99=%.0f max=%d\n",
			name, h.Count, h.Sum, h.P50, h.P95, h.P99, h.Max)
	}
	return sb.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
