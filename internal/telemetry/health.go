package telemetry

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// Health tracks a serving process's liveness, readiness, and degraded
// states, and renders the conventional /healthz and /readyz endpoints.
//
// Semantics: /healthz is liveness — it answers 200 as long as the process
// can answer at all, and its body lists any degraded states (scrub
// repairs, restore-from-fallback, sustained saturation) so an operator
// sees trouble without the orchestrator restarting a still-useful
// process. /readyz is readiness — 503 until SetReady(true) and while any
// registered readiness check fails, so load balancers drain a process
// that cannot currently serve.
type Health struct {
	mu       sync.Mutex
	ready    bool
	degraded map[string]string      // reason -> detail
	checks   map[string]func() error // readiness checks by name
}

// NewHealth returns a not-yet-ready health tracker.
func NewHealth() *Health {
	return &Health{degraded: map[string]string{}, checks: map[string]func() error{}}
}

// SetReady flips readiness. All methods are nil-safe.
func (h *Health) SetReady(ok bool) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.ready = ok
	h.mu.Unlock()
}

// Degrade records a degraded state under reason; recording the same
// reason again replaces the detail.
func (h *Health) Degrade(reason, detail string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.degraded[reason] = detail
	h.mu.Unlock()
}

// Clear removes a degraded state.
func (h *Health) Clear(reason string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	delete(h.degraded, reason)
	h.mu.Unlock()
}

// AddCheck registers a named readiness check, evaluated on every /readyz
// request; a non-nil error makes the process not ready.
func (h *Health) AddCheck(name string, fn func() error) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.checks[name] = fn
	h.mu.Unlock()
}

// HealthStatus is the JSON body of both endpoints.
type HealthStatus struct {
	Status   string            `json:"status"` // "ok", "degraded", or "unready"
	Ready    bool              `json:"ready"`
	Degraded map[string]string `json:"degraded,omitempty"`
	Failing  map[string]string `json:"failing,omitempty"` // readiness checks currently erroring
}

// Status evaluates the current state (running every readiness check).
func (h *Health) Status() HealthStatus {
	if h == nil {
		return HealthStatus{Status: "ok", Ready: true}
	}
	h.mu.Lock()
	st := HealthStatus{Ready: h.ready, Degraded: map[string]string{}}
	for k, v := range h.degraded {
		st.Degraded[k] = v
	}
	names := make([]string, 0, len(h.checks))
	for name := range h.checks {
		names = append(names, name)
	}
	sort.Strings(names)
	checks := make([]func() error, len(names))
	for i, name := range names {
		checks[i] = h.checks[name]
	}
	h.mu.Unlock()

	// Checks run outside the lock so a slow check never blocks Degrade.
	for i, name := range names {
		if err := checks[i](); err != nil {
			if st.Failing == nil {
				st.Failing = map[string]string{}
			}
			st.Failing[name] = err.Error()
		}
	}
	st.Ready = st.Ready && len(st.Failing) == 0
	switch {
	case !st.Ready:
		st.Status = "unready"
	case len(st.Degraded) > 0:
		st.Status = "degraded"
	default:
		st.Status = "ok"
	}
	if len(st.Degraded) == 0 {
		st.Degraded = nil
	}
	return st
}

// HealthzHandler serves liveness: always 200 while the process answers,
// body reporting any degraded states.
func (h *Health) HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeHealthJSON(w, http.StatusOK, h.Status())
	})
}

// ReadyzHandler serves readiness: 200 when ready and every check passes,
// 503 otherwise.
func (h *Health) ReadyzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		st := h.Status()
		code := http.StatusOK
		if !st.Ready {
			code = http.StatusServiceUnavailable
		}
		writeHealthJSON(w, code, st)
	})
}

func writeHealthJSON(w http.ResponseWriter, code int, st HealthStatus) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(st)
}
