package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// StartDebugServer serves expvar, pprof, and a JSON snapshot of reg on
// addr (e.g. "localhost:6060"):
//
//	/debug/vars     expvar
//	/debug/metrics  registry snapshot as JSON
//	/debug/pprof/   pprof index, profile, trace, symbol, cmdline
//
// The listener is bound synchronously so configuration errors surface
// immediately; serving happens in a background goroutine for the life of
// the process. The bound address is returned (useful with port 0).
func StartDebugServer(addr string, reg *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var snap Snapshot
		if reg != nil {
			snap = reg.Snapshot()
		}
		json.NewEncoder(w).Encode(snap)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}
