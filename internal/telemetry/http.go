package telemetry

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is a running debug endpoint. Close it on shutdown so the
// listener and serving goroutine are released; the old API leaked both
// for the life of the process.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with port 0).
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Close shuts the server down, closing the listener and waiting briefly
// for in-flight requests. Safe on a nil server; idempotent.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	// Close the listener directly: Shutdown only closes listeners Serve
	// has already registered, and Close may run before the serving
	// goroutine gets that far.
	_ = d.ln.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := d.srv.Shutdown(ctx); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// StartDebugServer serves expvar, pprof, Prometheus metrics, and a JSON
// snapshot of reg on addr (e.g. "localhost:6060"):
//
//	/debug/vars     expvar
//	/debug/metrics  registry snapshot as JSON
//	/metrics        registry snapshot in Prometheus text format
//	/debug/pprof/   pprof index, profile, trace, symbol, cmdline
//
// The listener is bound synchronously so configuration errors surface
// immediately; serving happens in a background goroutine until the
// returned handle is closed.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var snap Snapshot
		if reg != nil {
			snap = reg.Snapshot()
		}
		json.NewEncoder(w).Encode(snap)
	})
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go d.srv.Serve(ln)
	return d, nil
}
