package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram buckets: values below 8 get exact buckets; above, each
// power-of-two octave is split into 8 sub-buckets (the three bits after
// the leading bit), bounding relative quantile error at 12.5%. The layout
// is fixed-size so Observe is a couple of shifts and one atomic add —
// safe and allocation-free on hot paths.
const (
	histExactBuckets = 8
	histSubBuckets   = 8
	histBuckets      = histExactBuckets + (64-3)*histSubBuckets
)

// Histogram is a goroutine-safe distribution of uint64 samples (typically
// nanoseconds or byte counts) with log-scaled buckets. The zero value is
// ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // stored as ^value so zero means "unset"
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if ^old <= v || h.min.CompareAndSwap(old, ^v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if old >= v || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	h.buckets[histBucketIndex(v)].Add(1)
}

// histBucketIndex maps a sample to its bucket.
func histBucketIndex(v uint64) int {
	if v < histExactBuckets {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // >= 3
	sub := (v >> (uint(exp) - 3)) & (histSubBuckets - 1)
	return histExactBuckets + (exp-3)*histSubBuckets + int(sub)
}

// histBucketBounds returns the [lo, hi) value range of bucket i.
func histBucketBounds(i int) (lo, hi uint64) {
	if i < histExactBuckets {
		return uint64(i), uint64(i) + 1
	}
	exp := uint(3 + (i-histExactBuckets)/histSubBuckets)
	sub := uint64((i - histExactBuckets) % histSubBuckets)
	width := uint64(1) << (exp - 3)
	lo = (uint64(1) << exp) + sub*width
	return lo, lo + width
}

// HistogramBucket is one occupied bucket of a summarized distribution:
// samples v with Lo <= v < Hi. Buckets from the same histogram layout
// align by their bounds, which is what makes interval subtraction and
// Prometheus cumulative rendering possible downstream.
type HistogramBucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"n"`
}

// HistogramStats is a summarized distribution.
type HistogramStats struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Min   uint64  `json:"min"`
	Max   uint64  `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Buckets holds the occupied buckets in ascending bound order, so a
	// snapshot carries the full (log-scaled) distribution, not just three
	// pre-picked quantiles.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Stats summarizes the histogram. Quantiles are bucket-midpoint
// estimates, exact for values below 8 and within 12.5% relative error
// above.
func (h *Histogram) Stats() HistogramStats {
	var s HistogramStats
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if s.Count == 0 {
		return s
	}
	s.Min = ^h.min.Load()
	s.Max = h.max.Load()
	s.Mean = float64(s.Sum) / float64(s.Count)
	s.P50 = h.Quantile(0.50)
	s.P95 = h.Quantile(0.95)
	s.P99 = h.Quantile(0.99)
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n != 0 {
			lo, hi := histBucketBounds(i)
			s.Buckets = append(s.Buckets, HistogramBucket{Lo: lo, Hi: hi, Count: n})
		}
	}
	return s
}

// Quantile estimates the q-quantile of the summarized distribution from
// its buckets, clamped to [Min, Max]. It is the bucket-walk of
// Histogram.Quantile replayed over a snapshot — in particular over an
// interval delta produced by Snapshot.Sub, where the live histogram's
// cumulative quantiles would be wrong.
func (s HistogramStats) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= target {
			est := float64(b.Lo)
			if b.Hi-b.Lo > 1 {
				est += float64(b.Hi-b.Lo) / 2
			}
			if est < float64(s.Min) {
				est = float64(s.Min)
			}
			if est > float64(s.Max) {
				est = float64(s.Max)
			}
			return est
		}
	}
	return float64(s.Max)
}

// Quantile estimates the q-quantile (q in [0,1]) from the buckets,
// clamped to the observed [min, max] range.
func (h *Histogram) Quantile(q float64) float64 {
	count := h.count.Load()
	if count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(count)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		seen += n
		if seen >= target {
			lo, hi := histBucketBounds(i)
			est := float64(lo)
			if hi-lo > 1 {
				est += float64(hi-lo) / 2
			}
			if min := float64(^h.min.Load()); est < min {
				est = min
			}
			if max := float64(h.max.Load()); est > max {
				est = max
			}
			return est
		}
	}
	return float64(h.max.Load())
}
