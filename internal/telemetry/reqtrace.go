package telemetry

import (
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Request-scoped tracing. Where Tracer/Span decompose one simulation
// rank's timeline into phases, TraceContext decomposes one served request
// into the places its latency went: queue wait in the scheduler, index
// build and leaf scan in the snapshot query, modeled device reads in the
// pinned-version charge path, and whatever is left — handler overhead —
// derived at Finish so the span sum plus overhead equals the end-to-end
// latency exactly (the accounting identity the serve soak asserts).
//
// A TraceContext is carried explicitly down the request path (handler ->
// scheduler -> snapshot -> pin). Every method on a nil *TraceContext or
// nil *TraceSink is a no-op, so untraced callers pay one pointer test.

// SpanRecord is one completed phase of a request. Offsets are nanoseconds
// from the request start.
type SpanRecord struct {
	Name      string `json:"name"`
	StartNs   int64  `json:"start_ns"`
	DurNs     int64  `json:"dur_ns"`
	ModeledNs uint64 `json:"modeled_ns,omitempty"` // modeled device time attributed to the phase
}

// RequestTrace is one finished request. StartNs is on the sink clock
// (nanoseconds since the sink was created); span offsets are relative to
// the request.
type RequestTrace struct {
	ID         uint64       `json:"id"`
	Kind       string       `json:"kind"`
	Step       uint64       `json:"step,omitempty"`
	Err        string       `json:"error,omitempty"`
	StartNs    int64        `json:"start_ns"`
	TotalNs    int64        `json:"total_ns"`
	OverheadNs int64        `json:"overhead_ns"` // TotalNs minus the span durations
	Spans      []SpanRecord `json:"spans"`
}

// TraceSink mints trace contexts and retains the most recent finished
// traces in a bounded ring for the /v1/trace endpoint and the Chrome
// trace export.
type TraceSink struct {
	begin  time.Time
	nextID atomic.Uint64

	mu    sync.Mutex
	ring  []RequestTrace
	next  int // ring write cursor
	total uint64
}

// NewTraceSink returns a sink retaining the last capacity finished traces
// (default 256 when capacity <= 0).
func NewTraceSink(capacity int) *TraceSink {
	if capacity <= 0 {
		capacity = 256
	}
	return &TraceSink{begin: time.Now(), ring: make([]RequestTrace, 0, capacity)}
}

// Start opens a trace context for one request of the given kind (the
// query class: "point", "region", ...). Nil-safe: a nil sink returns a
// nil context.
func (s *TraceSink) Start(kind string) *TraceContext {
	if s == nil {
		return nil
	}
	return &TraceContext{
		sink: s,
		id:   s.nextID.Add(1),
		kind: kind,
		t0:   time.Now(),
	}
}

// finish stores one completed trace in the ring.
func (s *TraceSink) finish(rt RequestTrace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, rt)
	} else {
		s.ring[s.next] = rt
		s.next = (s.next + 1) % len(s.ring)
	}
	s.total++
}

// Total returns the number of traces finished into the sink so far.
func (s *TraceSink) Total() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Recent returns up to max finished traces, oldest first. max <= 0 means
// everything retained.
func (s *TraceSink) Recent(max int) []RequestTrace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RequestTrace, 0, len(s.ring))
	out = append(out, s.ring[s.next:]...)
	out = append(out, s.ring[:s.next]...)
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// Get returns the retained trace with the given ID.
func (s *TraceSink) Get(id uint64) (RequestTrace, bool) {
	if s == nil {
		return RequestTrace{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.ring {
		if s.ring[i].ID == id {
			return s.ring[i], true
		}
	}
	return RequestTrace{}, false
}

// traceLanes spreads concurrent requests over this many Chrome-trace
// rows so overlapping requests do not render as nested spans.
const traceLanes = 16

// Events converts the retained traces into span events for
// WriteChromeTrace. Each request renders as a lane-assigned "thread"
// (lane = ID mod 16): an enclosing span named after the query kind at
// depth 0, its phases at depth 1.
func (s *TraceSink) Events() []Event {
	var out []Event
	for _, rt := range s.Recent(0) {
		lane := int(rt.ID % traceLanes)
		out = append(out, Event{
			Name:    rt.Kind,
			Rank:    lane,
			Depth:   0,
			Step:    rt.Step,
			StartNs: rt.StartNs,
			DurNs:   rt.TotalNs,
		})
		for _, sp := range rt.Spans {
			out = append(out, Event{
				Name:      sp.Name,
				Rank:      lane,
				Depth:     1,
				Step:      rt.Step,
				StartNs:   rt.StartNs + sp.StartNs,
				DurNs:     sp.DurNs,
				ModeledNs: sp.ModeledNs,
			})
		}
	}
	return out
}

// WriteChromeTrace renders the retained request traces through the
// standard Chrome trace_event writer.
func (s *TraceSink) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, s.Events())
}

// TraceContext carries one in-flight request's trace. Spans are appended
// by whichever goroutine currently owns the request (handler, then a
// scheduler worker, then the handler again); the mutex makes interleaved
// observers safe too.
type TraceContext struct {
	sink *TraceSink
	id   uint64
	kind string
	t0   time.Time

	mu       sync.Mutex
	step     uint64
	errStr   string
	spans    []SpanRecord
	finished bool
}

// ID returns the trace's sink-unique ID (0 on a nil context).
func (tc *TraceContext) ID() uint64 {
	if tc == nil {
		return 0
	}
	return tc.id
}

// SetStep tags the trace with the snapshot version it was answered from.
func (tc *TraceContext) SetStep(step uint64) {
	if tc == nil {
		return
	}
	tc.mu.Lock()
	tc.step = step
	tc.mu.Unlock()
}

// SetError records the request's terminal error string.
func (tc *TraceContext) SetError(err error) {
	if tc == nil || err == nil {
		return
	}
	tc.mu.Lock()
	tc.errStr = err.Error()
	tc.mu.Unlock()
}

// AddSpan records a phase that began at start and ends now, attributing
// modeledNs of modeled device time to it. Used where the phase boundary
// is a timestamp the caller already holds (the scheduler's enqueue time).
func (tc *TraceContext) AddSpan(name string, start time.Time, modeledNs uint64) {
	if tc == nil {
		return
	}
	tc.mu.Lock()
	tc.spans = append(tc.spans, SpanRecord{
		Name:      name,
		StartNs:   start.Sub(tc.t0).Nanoseconds(),
		DurNs:     time.Since(start).Nanoseconds(),
		ModeledNs: modeledNs,
	})
	tc.mu.Unlock()
}

// StartSpan opens a phase; close it with End. Phases are expected to be
// sequential within a request (they are the disjoint places latency
// went), which is what keeps the Finish accounting identity meaningful.
func (tc *TraceContext) StartSpan(name string) *CtxSpan {
	if tc == nil {
		return nil
	}
	return &CtxSpan{tc: tc, name: name, start: time.Now()}
}

// CtxSpan is one open request phase.
type CtxSpan struct {
	tc      *TraceContext
	name    string
	start   time.Time
	modeled uint64
}

// AddModeled attributes modeled device nanoseconds to the phase.
func (s *CtxSpan) AddModeled(ns uint64) {
	if s == nil {
		return
	}
	s.modeled += ns
}

// End closes the phase. Safe on a nil span.
func (s *CtxSpan) End() {
	if s == nil {
		return
	}
	s.tc.AddSpan(s.name, s.start, s.modeled)
}

// Finish closes the trace: the end-to-end latency is measured, overhead
// is derived as total minus the recorded span durations, and the trace is
// stored in the sink. Idempotent; safe on a nil context.
func (tc *TraceContext) Finish() {
	if tc == nil {
		return
	}
	total := time.Since(tc.t0).Nanoseconds()
	tc.mu.Lock()
	if tc.finished {
		tc.mu.Unlock()
		return
	}
	tc.finished = true
	rt := RequestTrace{
		ID:      tc.id,
		Kind:    tc.kind,
		Step:    tc.step,
		Err:     tc.errStr,
		StartNs: tc.t0.Sub(tc.sink.begin).Nanoseconds(),
		TotalNs: total,
		Spans:   append([]SpanRecord(nil), tc.spans...),
	}
	tc.mu.Unlock()
	var spanSum int64
	for _, sp := range rt.Spans {
		spanSum += sp.DurNs
	}
	rt.OverheadNs = total - spanSum
	tc.sink.finish(rt)
}
