package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// PhaseStat aggregates all top-level spans of one phase name within a
// step.
type PhaseStat struct {
	Name       string `json:"name"`
	WallNs     int64  `json:"wall_ns"`
	ModeledNs  uint64 `json:"modeled_ns"`
	NVBMReads  uint64 `json:"nvbm_reads"`
	NVBMWrites uint64 `json:"nvbm_writes"`
}

// StepRecord is the machine-readable timeline of one simulation step —
// the unit of the JSONL exporter. Phases is ordered by first occurrence
// within the step, so repeated runs of a deterministic simulation produce
// byte-identical lines.
type StepRecord struct {
	Step       int         `json:"step"`
	Elements   int         `json:"elements,omitempty"`
	Octants    int         `json:"octants,omitempty"`
	WallNs     int64       `json:"wall_ns"`
	ModeledNs  uint64      `json:"modeled_ns"`
	NVBMReads  uint64      `json:"nvbm_reads"`
	NVBMWrites uint64      `json:"nvbm_writes"`
	Overlap    float64     `json:"overlap"`
	Expansion  float64     `json:"expansion,omitempty"`
	Merges     uint64      `json:"merges"`
	GCFreed    uint64      `json:"gc_freed,omitempty"`
	Copies     uint64      `json:"copies,omitempty"`
	Phases     []PhaseStat `json:"phases"`
}

// StepFromEvents folds one step's span events into a StepRecord. Only
// minimum-depth events are aggregated into phases (nested spans would
// double-count their parents); step-level totals sum those same events.
func StepFromEvents(step int, events []Event) StepRecord {
	rec := StepRecord{Step: step}
	if len(events) == 0 {
		return rec
	}
	minDepth := events[0].Depth
	for _, e := range events {
		if e.Depth < minDepth {
			minDepth = e.Depth
		}
	}
	idx := map[string]int{}
	for _, e := range events {
		if e.Depth != minDepth {
			continue
		}
		i, ok := idx[e.Name]
		if !ok {
			i = len(rec.Phases)
			idx[e.Name] = i
			rec.Phases = append(rec.Phases, PhaseStat{Name: e.Name})
		}
		p := &rec.Phases[i]
		p.WallNs += e.DurNs
		p.ModeledNs += e.ModeledNs
		p.NVBMReads += e.Reads
		p.NVBMWrites += e.Writes
		rec.WallNs += e.DurNs
		rec.ModeledNs += e.ModeledNs
		rec.NVBMReads += e.Reads
		rec.NVBMWrites += e.Writes
	}
	return rec
}

// WriteStepsJSONL writes one JSON object per line, one line per step.
func WriteStepsJSONL(w io.Writer, recs []StepRecord) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// SummarizeSteps renders the step records as a human-readable table, the
// counterpart of the JSONL exporter for terminal use.
func SummarizeSteps(recs []StepRecord) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "step\telements\tmodeled\tnvbm R/W\toverlap\tmerges\tphases")
	for _, r := range recs {
		var phases []string
		for _, p := range r.Phases {
			phases = append(phases, fmt.Sprintf("%s %.2fms", p.Name, float64(p.ModeledNs)/1e6))
		}
		fmt.Fprintf(w, "%d\t%d\t%.2fms\t%d/%d\t%.1f%%\t%d\t%s\n",
			r.Step, r.Elements, float64(r.ModeledNs)/1e6,
			r.NVBMReads, r.NVBMWrites, 100*r.Overlap, r.Merges,
			strings.Join(phases, ", "))
	}
	w.Flush()
	return sb.String()
}
