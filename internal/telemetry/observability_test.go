package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- Prometheus exposition ---

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.requests").Add(7)
	reg.Gauge("queue.depth").Set(3.5)
	h := reg.Histogram("serve.latency_ns")
	for i := uint64(1); i <= 100; i++ {
		h.Observe(i)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE serve_requests counter\nserve_requests 7\n",
		"# TYPE queue_depth gauge\nqueue_depth 3.5\n",
		"# TYPE serve_latency_ns histogram\n",
		"serve_latency_ns_bucket{le=\"+Inf\"} 100\n",
		"serve_latency_ns_sum 5050\n",
		"serve_latency_ns_count 100\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestPrometheusBucketsCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	h.Observe(1)
	h.Observe(1)
	h.Observe(100)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	// Bucket counts must be cumulative and end at the total.
	var last uint64
	lines := strings.Split(buf.String(), "\n")
	prev := uint64(0)
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "lat_bucket{") {
			continue
		}
		var v uint64
		if _, err := fmtSscanBucket(ln, &v); err != nil {
			t.Fatalf("parsing %q: %v", ln, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative: %q after %d", ln, prev)
		}
		prev, last = v, v
	}
	if last != 3 {
		t.Fatalf("final cumulative bucket = %d, want 3", last)
	}
}

// fmtSscanBucket extracts the sample value from a `name{le="..."} v` line.
func fmtSscanBucket(line string, v *uint64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var err error
	*v, err = parseUint(line[i+1:])
	return 1, err
}

func parseUint(s string) (uint64, error) {
	var v uint64
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, os.ErrInvalid
		}
		v = v*10 + uint64(r-'0')
	}
	return v, nil
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve.latency_ns": "serve_latency_ns",
		"droplet.nvbm:rd":  "droplet_nvbm:rd",
		"9lives":           "_lives",
		"a.b-c/d":          "a_b_c_d",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMetricsHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Inc()
	rr := httptest.NewRecorder()
	MetricsHandler(reg).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "x 1") {
		t.Fatalf("body missing sample:\n%s", rr.Body.String())
	}
	// Nil registry serves an empty exposition, not a panic.
	rr = httptest.NewRecorder()
	MetricsHandler(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("nil registry status = %d", rr.Code)
	}
}

// --- Snapshot.Sub histogram deltas ---

func TestSnapshotSubHistogramDeltas(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	// Interval 1: 100 small samples.
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	before := reg.Snapshot()
	// Interval 2: 100 large samples.
	for i := 0; i < 100; i++ {
		h.Observe(100_000)
	}
	delta := reg.Snapshot().Sub(before)
	d := delta.Histograms["lat"]
	if d.Count != 100 {
		t.Fatalf("delta Count = %d, want 100", d.Count)
	}
	if d.Sum != 100*100_000 {
		t.Fatalf("delta Sum = %d, want %d", d.Sum, 100*100_000)
	}
	// The interval quantiles must describe ONLY the second interval's
	// samples: p50 near 100000, not dragged down by the first interval's
	// 100 samples at 10. The histogram's relative error is 12.5%.
	if d.P50 < 80_000 || d.P50 > 120_000 {
		t.Fatalf("delta P50 = %g, want ~100000 (interval-only quantile)", d.P50)
	}
	// The cumulative stats, by contrast, blend both intervals.
	cum := reg.Snapshot().Histograms["lat"]
	if cum.P50 > 80_000 {
		t.Fatalf("cumulative P50 = %g unexpectedly high", cum.P50)
	}
}

func TestSnapshotSubHistogramTable(t *testing.T) {
	cases := []struct {
		name           string
		first, second  []uint64
		wantCount      uint64
		wantP50Lo      float64
		wantP50Hi      float64
		wantZeroBucket bool // delta should have no buckets at all
	}{
		{name: "disjoint ranges", first: []uint64{1, 1, 1}, second: []uint64{1000, 1000, 1000},
			wantCount: 3, wantP50Lo: 800, wantP50Hi: 1200},
		{name: "same bucket", first: []uint64{50, 50}, second: []uint64{50},
			wantCount: 1, wantP50Lo: 40, wantP50Hi: 60},
		{name: "empty interval", first: []uint64{7, 9}, second: nil,
			wantCount: 0, wantZeroBucket: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := NewRegistry()
			h := reg.Histogram("h")
			for _, v := range tc.first {
				h.Observe(v)
			}
			before := reg.Snapshot()
			for _, v := range tc.second {
				h.Observe(v)
			}
			d := reg.Snapshot().Sub(before).Histograms["h"]
			if d.Count != tc.wantCount {
				t.Fatalf("Count = %d, want %d", d.Count, tc.wantCount)
			}
			if tc.wantZeroBucket {
				if len(d.Buckets) != 0 {
					t.Fatalf("empty interval has %d buckets", len(d.Buckets))
				}
				return
			}
			if d.P50 < tc.wantP50Lo || d.P50 > tc.wantP50Hi {
				t.Fatalf("P50 = %g, want in [%g, %g]", d.P50, tc.wantP50Lo, tc.wantP50Hi)
			}
		})
	}
}

func TestHistogramStatsQuantileFromBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h")
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := reg.Snapshot().Histograms["h"]
	// Snapshot-side quantile replay must agree with the live quantile
	// within the histogram's resolution.
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := s.Quantile(q)
		want := 1000 * q
		if got < want*0.8 || got > want*1.25 {
			t.Errorf("Quantile(%g) = %g, want ~%g", q, got, want)
		}
	}
	if (HistogramStats{}).Quantile(0.5) != 0 {
		t.Error("empty stats quantile should be 0")
	}
}

// --- Flight recorder ---

func TestFlightRecorderOrderAndWraparound(t *testing.T) {
	fr := NewFlightRecorder(8)
	for i := 0; i < 20; i++ {
		fr.Record(FlightEvent{Kind: "e", Value: uint64(i)})
	}
	evs := fr.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(13+i) {
			t.Fatalf("event %d has Seq %d, want %d (oldest-first ring tail)", i, ev.Seq, 13+i)
		}
		if ev.Value != uint64(12+i) {
			t.Fatalf("event %d has Value %d, want %d", i, ev.Value, 12+i)
		}
	}
	if fr.Recorded() != 20 {
		t.Fatalf("Recorded() = %d, want 20", fr.Recorded())
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				fr.Record(FlightEvent{Kind: "k", Step: uint64(g), Value: uint64(i)})
			}
		}(g)
	}
	// Concurrent readers must never see duplicates or out-of-order events.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			evs := fr.Events()
			for j := 1; j < len(evs); j++ {
				if evs[j].Seq <= evs[j-1].Seq {
					t.Errorf("events out of order: Seq %d after %d", evs[j].Seq, evs[j-1].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if fr.Recorded() != 4000 {
		t.Fatalf("Recorded() = %d, want 4000", fr.Recorded())
	}
	if n := len(fr.Events()); n != 128 {
		t.Fatalf("retained %d, want 128", n)
	}
}

func TestFlightRecorderJSONLRoundTrip(t *testing.T) {
	fr := NewFlightRecorder(16)
	fr.Record(FlightEvent{Kind: "commit", Step: 3, Value: 0xabc, Detail: "d"})
	fr.Record(FlightEvent{Kind: "gc", Step: 3, Value: 17})
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	if err := fr.DumpFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := ReadFlightDump(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("read %d events, want 2", len(evs))
	}
	if evs[0].Kind != "commit" || evs[0].Step != 3 || evs[0].Value != 0xabc || evs[0].Detail != "d" {
		t.Fatalf("round-trip mangled event: %+v", evs[0])
	}
	if evs[1].Kind != "gc" || evs[1].Value != 17 {
		t.Fatalf("round-trip mangled event: %+v", evs[1])
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(FlightEvent{Kind: "x"})
	if fr.Events() != nil || fr.Recorded() != 0 {
		t.Fatal("nil recorder should be empty")
	}
	if err := fr.DumpFile("/nonexistent/should/not/be/written"); err != nil {
		t.Fatal("nil DumpFile should be a no-op")
	}
	fr.DumpOnSignal("x")()
}

// --- Request tracing ---

func TestTraceContextAccountingIdentity(t *testing.T) {
	sink := NewTraceSink(8)
	tc := sink.Start("point")
	sp := tc.StartSpan("queue_wait")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	sp = tc.StartSpan("leaf_scan")
	time.Sleep(time.Millisecond)
	sp.AddModeled(12345)
	sp.End()
	tc.SetStep(42)
	tc.Finish()
	tc.Finish() // idempotent

	if sink.Total() != 1 {
		t.Fatalf("sink Total = %d, want 1", sink.Total())
	}
	rt, ok := sink.Get(tc.ID())
	if !ok {
		t.Fatal("trace not retained")
	}
	if rt.Kind != "point" || rt.Step != 42 {
		t.Fatalf("trace = %+v", rt)
	}
	if len(rt.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(rt.Spans))
	}
	if rt.Spans[1].ModeledNs != 12345 {
		t.Fatalf("modeled ns = %d", rt.Spans[1].ModeledNs)
	}
	var spanSum int64
	for _, sp := range rt.Spans {
		spanSum += sp.DurNs
	}
	// The accounting identity: span sum + overhead == total, exactly.
	if spanSum+rt.OverheadNs != rt.TotalNs {
		t.Fatalf("spans(%d) + overhead(%d) != total(%d)", spanSum, rt.OverheadNs, rt.TotalNs)
	}
	if rt.OverheadNs < 0 {
		t.Fatalf("negative overhead %d with sequential spans", rt.OverheadNs)
	}
}

func TestTraceSinkRingAndRecent(t *testing.T) {
	sink := NewTraceSink(4)
	for i := 0; i < 6; i++ {
		sink.Start("q").Finish()
	}
	rec := sink.Recent(0)
	if len(rec) != 4 {
		t.Fatalf("retained %d, want 4", len(rec))
	}
	for i := 1; i < len(rec); i++ {
		if rec[i].ID <= rec[i-1].ID {
			t.Fatalf("Recent not oldest-first: %d after %d", rec[i].ID, rec[i-1].ID)
		}
	}
	if got := sink.Recent(2); len(got) != 2 || got[1].ID != rec[3].ID {
		t.Fatalf("Recent(2) = %+v", got)
	}
	if _, ok := sink.Get(rec[0].ID - 100); ok {
		t.Fatal("Get of evicted/unknown ID should miss")
	}
}

func TestTraceNilSafe(t *testing.T) {
	var sink *TraceSink
	tc := sink.Start("x")
	if tc != nil {
		t.Fatal("nil sink must mint nil contexts")
	}
	tc.SetStep(1)
	tc.SetError(os.ErrInvalid)
	tc.AddSpan("s", time.Now(), 0)
	sp := tc.StartSpan("s")
	sp.AddModeled(1)
	sp.End()
	tc.Finish()
	if sink.Total() != 0 || sink.Recent(1) != nil {
		t.Fatal("nil sink should be empty")
	}
}

func TestTraceSinkChromeExport(t *testing.T) {
	sink := NewTraceSink(8)
	tc := sink.Start("region")
	tc.StartSpan("leaf_scan").End()
	tc.Finish()
	var buf bytes.Buffer
	if err := sink.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if n, _ := ev["name"].(string); n != "" {
			names[n] = true
		}
	}
	if !names["region"] || !names["leaf_scan"] {
		t.Fatalf("chrome trace missing request/phase events: %v", names)
	}
}

// --- Health ---

func TestHealthEndpoints(t *testing.T) {
	h := NewHealth()
	// Not ready yet: readyz 503, healthz 200.
	rr := httptest.NewRecorder()
	h.ReadyzHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != 503 {
		t.Fatalf("unready readyz = %d", rr.Code)
	}
	rr = httptest.NewRecorder()
	h.HealthzHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 200 {
		t.Fatalf("healthz = %d", rr.Code)
	}

	h.SetReady(true)
	rr = httptest.NewRecorder()
	h.ReadyzHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != 200 {
		t.Fatalf("ready readyz = %d", rr.Code)
	}

	// Degraded states show in the body but keep healthz at 200.
	h.Degrade("saturation", "sustained rejections")
	st := h.Status()
	if st.Status != "degraded" || st.Degraded["saturation"] == "" {
		t.Fatalf("degraded status = %+v", st)
	}
	rr = httptest.NewRecorder()
	h.HealthzHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "saturation") {
		t.Fatalf("degraded healthz = %d body %s", rr.Code, rr.Body.String())
	}
	h.Clear("saturation")
	if h.Status().Status != "ok" {
		t.Fatalf("cleared status = %+v", h.Status())
	}

	// A failing readiness check flips readyz to 503 even when ready.
	h.AddCheck("catalog", func() error { return os.ErrClosed })
	rr = httptest.NewRecorder()
	h.ReadyzHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != 503 || !strings.Contains(rr.Body.String(), "catalog") {
		t.Fatalf("failing-check readyz = %d body %s", rr.Code, rr.Body.String())
	}

	// Nil receiver is fully inert.
	var nh *Health
	nh.SetReady(true)
	nh.Degrade("x", "y")
	nh.Clear("x")
	nh.AddCheck("c", func() error { return nil })
	if s := nh.Status(); !s.Ready || s.Status != "ok" {
		t.Fatalf("nil health status = %+v", s)
	}
}

// --- Debug server handle ---

func TestDebugServerClose(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Inc()
	d, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	addr := d.Addr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The port must actually be released: a second server can bind it.
	d2, err := StartDebugServer(addr, reg)
	if err != nil {
		t.Fatalf("rebinding %s after Close: %v", addr, err)
	}
	defer d2.Close()
	var nd *DebugServer
	if nd.Addr() != "" || nd.Close() != nil {
		t.Fatal("nil DebugServer should be inert")
	}
}
