package telemetry

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("ops")
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("ops").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	g := &Gauge{}
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(goroutines*perG)*0.5; got != want {
		t.Fatalf("gauge = %g, want %g", got, want)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := &Histogram{}
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(uint64(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Stats()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	if s.Min != 0 || s.Max != goroutines*perG-1 {
		t.Fatalf("min/max = %d/%d, want 0/%d", s.Min, s.Max, goroutines*perG-1)
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	h := &Histogram{}
	for v := uint64(0); v < 8; v++ {
		h.Observe(v)
	}
	// Small values live in exact buckets, so low quantiles are exact.
	if got := h.Quantile(0); got != 0 {
		t.Errorf("q0 = %g, want 0", got)
	}
	if got := h.Quantile(1); got != 7 {
		t.Errorf("q1 = %g, want 7", got)
	}
	s := h.Stats()
	if s.Mean != 3.5 {
		t.Errorf("mean = %g, want 3.5", s.Mean)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Uniform 1..100000: bucket-midpoint quantiles must land within the
	// documented 12.5% relative error of the true quantile.
	h := &Histogram{}
	const n = 100000
	for v := uint64(1); v <= n; v++ {
		h.Observe(v)
	}
	for _, q := range []float64{0.50, 0.95, 0.99} {
		truth := q * n
		got := h.Quantile(q)
		if relErr := math.Abs(got-truth) / truth; relErr > 0.125 {
			t.Errorf("q%.2f = %g, truth %g, rel err %.3f > 0.125", q, got, truth, relErr)
		}
	}
}

func TestHistogramBucketBoundsRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 7, 8, 9, 15, 16, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, math.MaxUint64} {
		i := histBucketIndex(v)
		lo, hi := histBucketBounds(i)
		if hi == 0 { // top bucket of the top octave wraps; treat as open-ended
			hi = math.MaxUint64
		}
		if v < lo || v >= hi && v != math.MaxUint64 {
			t.Errorf("value %d mapped to bucket %d = [%d,%d)", v, i, lo, hi)
		}
	}
}

func TestSnapshotDelta(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Add(10)
	reg.Gauge("g").Set(1.5)
	reg.Histogram("h").Observe(100)
	before := reg.Snapshot()

	reg.Counter("a").Add(5)
	reg.Counter("b").Add(3)
	reg.Gauge("g").Set(2.5)
	reg.Histogram("h").Observe(200)
	after := reg.Snapshot()

	d := after.Sub(before)
	if d.Counters["a"] != 5 {
		t.Errorf("delta a = %d, want 5", d.Counters["a"])
	}
	if d.Counters["b"] != 3 {
		t.Errorf("delta b = %d, want 3 (counter born between snapshots)", d.Counters["b"])
	}
	if d.Gauges["g"] != 2.5 {
		t.Errorf("delta gauge = %g, want point-in-time 2.5", d.Gauges["g"])
	}
	if h := d.Histograms["h"]; h.Count != 1 || h.Sum != 200 {
		t.Errorf("delta hist = count %d sum %d, want 1/200", h.Count, h.Sum)
	}
}

func TestSnapshotDeltaSaturates(t *testing.T) {
	// A counter that went backwards between snapshots (reset) must clamp
	// to zero, never wrap.
	earlier := Snapshot{Counters: map[string]uint64{"c": 100}}
	later := Snapshot{Counters: map[string]uint64{"c": 40}}
	if got := later.Sub(earlier).Counters["c"]; got != 0 {
		t.Fatalf("saturating delta = %d, want 0", got)
	}
}

func TestRegisterFunc(t *testing.T) {
	reg := NewRegistry()
	v := 1.0
	reg.RegisterFunc("dyn", func() float64 { return v })
	if got := reg.Snapshot().Gauges["dyn"]; got != 1.0 {
		t.Fatalf("func gauge = %g, want 1", got)
	}
	v = 7.0
	if got := reg.Snapshot().Gauges["dyn"]; got != 7.0 {
		t.Fatalf("func gauge after update = %g, want 7", got)
	}
}

func TestSnapshotStringSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z").Inc()
	reg.Counter("a").Inc()
	s := reg.Snapshot().String()
	if want := "a: 1\nz: 1\n"; s != want {
		t.Fatalf("String() = %q, want %q", s, want)
	}
}

func TestRegistryGetOrCreateStable(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	ptrs := make([]*Counter, 16)
	for i := range ptrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ptrs[i] = reg.Counter("same")
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(ptrs); i++ {
		if ptrs[i] != ptrs[0] {
			t.Fatal("Counter(name) returned distinct instances for one name")
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := &Counter{}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{}
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i++
			h.Observe(i * 37)
		}
	})
}

func ExampleSnapshot_Sub() {
	reg := NewRegistry()
	reg.Counter("merges").Add(4)
	before := reg.Snapshot()
	reg.Counter("merges").Add(2)
	delta := reg.Snapshot().Sub(before)
	fmt.Println(delta.Counters["merges"])
	// Output: 2
}
