// Package mesh implements the Extract routine of §2: converting the leaf
// octants of an adaptive octree into an unstructured hexahedral mesh for
// solving and visualization. Every leaf becomes one element; element
// corners are deduplicated into mesh vertices and classified as anchored
// or dangling (hanging) nodes, as in Figure 1(b) of the paper.
//
// Extraction is implementation-agnostic: it consumes any leaf iterator, so
// the in-core, out-of-core and PM-octree all extract through the same
// code.
package mesh

import (
	"fmt"

	"pmoctree/internal/morton"
)

// DataWords matches the per-octant payload of the octree implementations.
const DataWords = 4

// LeafIterator supplies leaves in Z-order; all three octree
// implementations provide a method with this shape.
type LeafIterator func(fn func(code morton.Code, data [DataWords]float64) bool)

// VertexKind classifies a mesh node.
type VertexKind uint8

const (
	// Anchored nodes carry degrees of freedom in a finite-volume or
	// finite-element solve.
	Anchored VertexKind = iota
	// Dangling (hanging) nodes sit on the edge or face of a coarser
	// neighbor element; their values are interpolated, not solved.
	Dangling
)

// String names the vertex kind.
func (k VertexKind) String() string {
	if k == Dangling {
		return "dangling"
	}
	return "anchored"
}

// Vertex is one mesh node in the unit cube.
type Vertex struct {
	X, Y, Z float64
	Kind    VertexKind
}

// Element is one hexahedral cell. Verts indexes Mesh.Vertices in the
// standard corner order (x fastest, then y, then z).
type Element struct {
	Code  morton.Code
	Verts [8]int
	Data  [DataWords]float64
}

// Mesh is an extracted unstructured hexahedral mesh.
type Mesh struct {
	Elements []Element
	Vertices []Vertex
}

// grid unit: integer corner coordinates on the 2^MaxLevel lattice.
type vkey struct{ x, y, z uint32 }

// Extract builds the mesh from the leaves of an octree. The octree should
// be 2:1 balanced for the dangling-node classification to be meaningful
// (that is the point of the Balance routine).
func Extract(leaves LeafIterator) *Mesh {
	m := &Mesh{}
	index := map[vkey]int{}

	vertexAt := func(k vkey) int {
		if id, ok := index[k]; ok {
			return id
		}
		id := len(m.Vertices)
		scale := 1.0 / float64(uint64(1)<<morton.MaxLevel)
		m.Vertices = append(m.Vertices, Vertex{
			X: float64(k.x) * scale,
			Y: float64(k.y) * scale,
			Z: float64(k.z) * scale,
		})
		index[k] = id
		return id
	}

	leaves(func(code morton.Code, data [DataWords]float64) bool {
		ax, ay, az, level := code.Decode()
		g := uint32(1) << (morton.MaxLevel - level)
		base := vkey{ax * g, ay * g, az * g}
		var el Element
		el.Code = code
		el.Data = data
		for i := 0; i < 8; i++ {
			k := vkey{
				base.x + uint32(i&1)*g,
				base.y + uint32((i>>1)&1)*g,
				base.z + uint32((i>>2)&1)*g,
			}
			el.Verts[i] = vertexAt(k)
		}
		m.Elements = append(m.Elements, el)
		return true
	})

	m.classify(index)
	return m
}

// classify marks dangling vertices. Under the 2:1 constraint, a hanging
// node is exactly a mesh vertex that coincides with the midpoint of an
// edge or the center of a face of some (coarser) element.
func (m *Mesh) classify(index map[vkey]int) {
	for ei := range m.Elements {
		el := &m.Elements[ei]
		_, _, _, level := el.Code.Decode()
		g := uint32(1) << (morton.MaxLevel - level)
		if g == 1 {
			continue // finest possible element has no midpoints
		}
		h := g / 2
		ax, ay, az, _ := el.Code.Decode()
		base := vkey{ax * g, ay * g, az * g}
		// Edge midpoints and face centers: all lattice points of the
		// element whose offsets use {0, h, g} with at least one h.
		offs := [3]uint32{0, h, g}
		for _, ox := range offs {
			for _, oy := range offs {
				for _, oz := range offs {
					if ox != h && oy != h && oz != h {
						continue // a corner (or the volume-center when all==h — also skip? no: volume center is never a hanging node of a face/edge)
					}
					if ox == h && oy == h && oz == h {
						continue // volume center: interior, not a mesh vertex of neighbors
					}
					k := vkey{base.x + ox, base.y + oy, base.z + oz}
					if id, ok := index[k]; ok {
						m.Vertices[id].Kind = Dangling
					}
				}
			}
		}
	}
}

// AnchoredCount returns the number of anchored nodes.
func (m *Mesh) AnchoredCount() int {
	n := 0
	for _, v := range m.Vertices {
		if v.Kind == Anchored {
			n++
		}
	}
	return n
}

// DanglingCount returns the number of hanging nodes.
func (m *Mesh) DanglingCount() int { return len(m.Vertices) - m.AnchoredCount() }

// Volume returns the total element volume; 1.0 for a mesh extracted from a
// full octree tiling.
func (m *Mesh) Volume() float64 {
	v := 0.0
	for _, el := range m.Elements {
		e := el.Code.Extent()
		v += e * e * e
	}
	return v
}

// LevelHistogram returns element counts per octree level.
func (m *Mesh) LevelHistogram() map[uint8]int {
	h := map[uint8]int{}
	for _, el := range m.Elements {
		h[el.Code.Level()]++
	}
	return h
}

// Validate checks extraction invariants: vertex indices in range, element
// corners geometrically consistent, and the mesh tiles the unit cube.
func (m *Mesh) Validate() error {
	if len(m.Elements) == 0 {
		return fmt.Errorf("mesh: no elements")
	}
	for ei, el := range m.Elements {
		e := el.Code.Extent()
		v0 := el.Verts[0]
		v7 := el.Verts[7]
		if v0 < 0 || v0 >= len(m.Vertices) || v7 < 0 || v7 >= len(m.Vertices) {
			return fmt.Errorf("mesh: element %d vertex index out of range", ei)
		}
		a, b := m.Vertices[v0], m.Vertices[v7]
		if db := b.X - a.X; !close(db, e) {
			return fmt.Errorf("mesh: element %d spans %v, want %v", ei, db, e)
		}
	}
	if v := m.Volume(); !close(v, 1.0) {
		return fmt.Errorf("mesh: elements cover volume %v, want 1", v)
	}
	return nil
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
