package mesh

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"pmoctree/internal/core"
	"pmoctree/internal/morton"
	"pmoctree/internal/octree"
)

// leavesOf adapts the in-core octree to a LeafIterator.
func leavesOf(t *octree.Tree) LeafIterator {
	return func(fn func(morton.Code, [DataWords]float64) bool) {
		t.ForEachLeaf(func(n *octree.Node) bool {
			return fn(n.Code, n.Data)
		})
	}
}

func TestExtractSingleRoot(t *testing.T) {
	tr := octree.New()
	m := Extract(leavesOf(tr))
	if len(m.Elements) != 1 {
		t.Fatalf("elements = %d", len(m.Elements))
	}
	if len(m.Vertices) != 8 {
		t.Fatalf("vertices = %d", len(m.Vertices))
	}
	if m.DanglingCount() != 0 {
		t.Errorf("dangling = %d", m.DanglingCount())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExtractUniformMeshSharesVertices(t *testing.T) {
	tr := octree.New()
	tr.RefineWhere(func(morton.Code) bool { return true }, 1)
	m := Extract(leavesOf(tr))
	if len(m.Elements) != 8 {
		t.Fatalf("elements = %d", len(m.Elements))
	}
	// A 2x2x2 grid has 27 distinct vertices, not 64.
	if len(m.Vertices) != 27 {
		t.Fatalf("vertices = %d, want 27", len(m.Vertices))
	}
	if m.DanglingCount() != 0 {
		t.Errorf("uniform mesh has %d dangling nodes", m.DanglingCount())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExtractDanglingNodes(t *testing.T) {
	tr := octree.New()
	kids := tr.Refine(tr.Root)
	tr.Refine(kids[0]) // one octant finer than its neighbors
	m := Extract(leavesOf(tr))
	if len(m.Elements) != 15 {
		t.Fatalf("elements = %d", len(m.Elements))
	}
	if m.DanglingCount() == 0 {
		t.Fatal("refined corner produced no hanging nodes")
	}
	// The hanging nodes sit on the boundary faces of the refined octant
	// that touch coarser neighbors. Child 0's refined region is
	// [0,0.5]^3; its outward faces at x=0.5, y=0.5, z=0.5 carry hanging
	// nodes: 3 faces x 5 midpoints, shared edges dedup to 12... verify
	// the exact classification instead of a magic count.
	for _, v := range m.Vertices {
		if v.Kind != Dangling {
			continue
		}
		onBoundary := v.X == 0.5 || v.Y == 0.5 || v.Z == 0.5
		if !onBoundary {
			t.Errorf("dangling node (%v,%v,%v) not on a coarse-fine face", v.X, v.Y, v.Z)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDanglingCountMatchesTheory(t *testing.T) {
	// One refined child inside an otherwise-uniform level-1 mesh: the
	// three interface faces each contribute 4 edge midpoints + 1 face
	// center, with the 3 shared edge midpoints double-counted across
	// face pairs and 1 corner midpoint shared by all three... count by
	// construction instead: midpoints of the refined octant lying on
	// the interface planes.
	tr := octree.New()
	kids := tr.Refine(tr.Root)
	tr.Refine(kids[0])
	m := Extract(leavesOf(tr))
	want := 0
	seen := map[[3]float64]bool{}
	for _, v := range m.Vertices {
		if v.Kind == Dangling {
			key := [3]float64{v.X, v.Y, v.Z}
			if !seen[key] {
				seen[key] = true
				want++
			}
		}
	}
	if want != m.DanglingCount() {
		t.Fatalf("dedup mismatch")
	}
	// For this configuration the hanging nodes are the 12 non-corner
	// lattice points of the three interface faces.
	if m.DanglingCount() != 12 {
		t.Errorf("dangling = %d, want 12", m.DanglingCount())
	}
}

func TestExtractFromPMOctree(t *testing.T) {
	tr := core.Create(core.Config{})
	tr.RefineWhere(func(c morton.Code) bool { return c.Level() < 2 }, 2)
	tr.Persist()
	m := Extract(tr.ForEachLeaf)
	if len(m.Elements) != 64 {
		t.Fatalf("elements = %d", len(m.Elements))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// 5x5x5 lattice = 125 vertices for a uniform 4x4x4 grid.
	if len(m.Vertices) != 125 {
		t.Errorf("vertices = %d, want 125", len(m.Vertices))
	}
}

func TestElementDataCarried(t *testing.T) {
	tr := octree.New()
	tr.Root.Data[2] = 3.5
	m := Extract(leavesOf(tr))
	if m.Elements[0].Data[2] != 3.5 {
		t.Errorf("element data = %v", m.Elements[0].Data)
	}
}

func TestLevelHistogram(t *testing.T) {
	tr := octree.New()
	kids := tr.Refine(tr.Root)
	tr.Refine(kids[3])
	m := Extract(leavesOf(tr))
	h := m.LevelHistogram()
	if h[1] != 7 || h[2] != 8 {
		t.Errorf("histogram = %v", h)
	}
}

func TestVertexKindString(t *testing.T) {
	if Anchored.String() != "anchored" || Dangling.String() != "dangling" {
		t.Error("kind strings wrong")
	}
}

func TestBalancedMeshDanglingBounded(t *testing.T) {
	// On a 2:1-balanced adaptive mesh, every element face has at most
	// one level of hanging refinement; sanity-check extraction on a
	// realistic interface mesh.
	tr := octree.New()
	// Refine a thin spherical shell (region-intersection test) so the
	// mesh mixes levels 2..4.
	shell := func(c morton.Code) bool {
		x, y, z := c.Center()
		h := c.Extent() / 2
		minD2 := 0.0
		maxD2 := 0.0
		for _, p := range [3]float64{x, y, z} {
			lo, hi := p-h, p+h
			d := 0.0
			if 0.5 < lo {
				d = lo - 0.5
			} else if 0.5 > hi {
				d = 0.5 - hi
			}
			minD2 += d * d
			far := 0.5 - lo
			if f := hi - 0.5; f > far {
				far = f
			}
			maxD2 += far * far
		}
		return minD2 <= 0.33*0.33 && maxD2 >= 0.27*0.27
	}
	tr.RefineWhere(shell, 4)
	tr.Balance()
	m := Extract(leavesOf(tr))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.DanglingCount() == 0 {
		t.Error("adaptive mesh produced no hanging nodes")
	}
	if m.AnchoredCount() <= m.DanglingCount() {
		t.Errorf("anchored %d <= dangling %d; classification suspicious",
			m.AnchoredCount(), m.DanglingCount())
	}
}

func TestWriteVTK(t *testing.T) {
	tr := octree.New()
	kids := tr.Refine(tr.Root)
	tr.Refine(kids[0])
	m := Extract(leavesOf(tr))

	var buf bytes.Buffer
	if err := m.WriteVTK(&buf, "test mesh"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"test mesh",
		"DATASET UNSTRUCTURED_GRID",
		fmt.Sprintf("POINTS %d double", len(m.Vertices)),
		fmt.Sprintf("CELLS %d %d", len(m.Elements), len(m.Elements)*9),
		fmt.Sprintf("CELL_TYPES %d", len(m.Elements)),
		"SCALARS level int 1",
		"SCALARS field0 double 1",
		"SCALARS dangling int 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VTK output missing %q", want)
		}
	}
	// Every cell line starts with "8 " and indexes valid points.
	lines := strings.Split(out, "\n")
	inCells := false
	cells := 0
	for _, ln := range lines {
		if strings.HasPrefix(ln, "CELLS ") {
			inCells = true
			continue
		}
		if inCells {
			if strings.HasPrefix(ln, "CELL_TYPES") {
				break
			}
			var idx [9]int
			n, err := fmt.Sscan(ln, &idx[0], &idx[1], &idx[2], &idx[3], &idx[4], &idx[5], &idx[6], &idx[7], &idx[8])
			if err != nil || n != 9 || idx[0] != 8 {
				t.Fatalf("bad cell line %q", ln)
			}
			for _, v := range idx[1:] {
				if v < 0 || v >= len(m.Vertices) {
					t.Fatalf("cell vertex %d out of range", v)
				}
			}
			cells++
		}
	}
	if cells != len(m.Elements) {
		t.Errorf("wrote %d cells, want %d", cells, len(m.Elements))
	}
}

func TestWriteVTKDefaultTitle(t *testing.T) {
	tr := octree.New()
	m := Extract(leavesOf(tr))
	var buf bytes.Buffer
	if err := m.WriteVTK(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pmoctree extracted mesh") {
		t.Error("default title missing")
	}
}
