package mesh

import (
	"bufio"
	"fmt"
	"io"
)

// WriteVTK serializes the mesh as a legacy-format VTK unstructured grid
// (ASCII), the lingua franca of scientific visualization tools — §2's
// Extract routine exists to feed exactly such pipelines. Elements become
// VTK_HEXAHEDRON cells; cell data carries the octant fields and the
// octree level, point data carries the anchored/dangling classification.
func (m *Mesh) WriteVTK(w io.Writer, title string) error {
	bw := bufio.NewWriter(w)
	if title == "" {
		title = "pmoctree extracted mesh"
	}
	fmt.Fprintf(bw, "# vtk DataFile Version 3.0\n%s\nASCII\nDATASET UNSTRUCTURED_GRID\n", title)

	fmt.Fprintf(bw, "POINTS %d double\n", len(m.Vertices))
	for _, v := range m.Vertices {
		fmt.Fprintf(bw, "%g %g %g\n", v.X, v.Y, v.Z)
	}

	fmt.Fprintf(bw, "CELLS %d %d\n", len(m.Elements), len(m.Elements)*9)
	for _, el := range m.Elements {
		// VTK hexahedron corner order: bottom face CCW, then top face
		// CCW. Our corners are x-fastest: 0..7 = (x,y,z) bits.
		o := el.Verts
		fmt.Fprintf(bw, "8 %d %d %d %d %d %d %d %d\n",
			o[0], o[1], o[3], o[2], o[4], o[5], o[7], o[6])
	}

	fmt.Fprintf(bw, "CELL_TYPES %d\n", len(m.Elements))
	for range m.Elements {
		fmt.Fprintln(bw, 12) // VTK_HEXAHEDRON
	}

	fmt.Fprintf(bw, "CELL_DATA %d\n", len(m.Elements))
	fmt.Fprintln(bw, "SCALARS level int 1\nLOOKUP_TABLE default")
	for _, el := range m.Elements {
		fmt.Fprintln(bw, el.Code.Level())
	}
	for f := 0; f < DataWords; f++ {
		fmt.Fprintf(bw, "SCALARS field%d double 1\nLOOKUP_TABLE default\n", f)
		for _, el := range m.Elements {
			fmt.Fprintf(bw, "%g\n", el.Data[f])
		}
	}

	fmt.Fprintf(bw, "POINT_DATA %d\n", len(m.Vertices))
	fmt.Fprintln(bw, "SCALARS dangling int 1\nLOOKUP_TABLE default")
	for _, v := range m.Vertices {
		if v.Kind == Dangling {
			fmt.Fprintln(bw, 1)
		} else {
			fmt.Fprintln(bw, 0)
		}
	}
	return bw.Flush()
}
