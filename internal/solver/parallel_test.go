package solver

import (
	"math"
	"math/rand"
	"testing"

	"pmoctree/internal/morton"
	"pmoctree/internal/octree"
	"pmoctree/internal/parallel"
)

func randomRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

// TestCGWorkerCountInvariant is the PR's determinism acceptance check:
// parallel CG must produce bit-identical residuals, iteration counts and
// solutions for every worker count.
func TestCGWorkerCountInvariant(t *testing.T) {
	leaves := adaptiveLeaves(4)
	b := randomRHS(len(leaves), 3)

	solveWith := func(workers int) (Result, []float64) {
		s, err := Build(leaves)
		if err != nil {
			t.Fatal(err)
		}
		s.SetWorkers(workers)
		x := make([]float64, s.N())
		res, err := s.Solve(b, x, Options{Tol: 1e-10})
		if err != nil {
			t.Fatal(err)
		}
		return res, x
	}

	refRes, refX := solveWith(1)
	if !refRes.Converged {
		t.Fatalf("serial CG did not converge: %+v", refRes)
	}
	for _, workers := range []int{2, 4, 7} {
		res, x := solveWith(workers)
		if res.Iterations != refRes.Iterations {
			t.Errorf("workers=%d: %d iterations, serial took %d", workers, res.Iterations, refRes.Iterations)
		}
		if res.Residual != refRes.Residual {
			t.Errorf("workers=%d: residual %v, serial %v (must be bit-identical)", workers, res.Residual, refRes.Residual)
		}
		for i := range x {
			if x[i] != refX[i] {
				t.Fatalf("workers=%d: x[%d] = %v, serial %v (must be bit-identical)", workers, i, x[i], refX[i])
			}
		}
	}
}

// TestSolveNeumannWorkerCountInvariant: same contract for the singular
// projection solve.
func TestSolveNeumannWorkerCountInvariant(t *testing.T) {
	leaves := adaptiveLeaves(4)

	solveWith := func(workers int) (Result, []float64) {
		s, err := Build(leaves)
		if err != nil {
			t.Fatal(err)
		}
		s.SetWorkers(workers)
		n := s.N()
		// Divergence of a smooth velocity field: compatible by
		// construction (walls are impermeable).
		u := make([]float64, n)
		v := make([]float64, n)
		w := make([]float64, n)
		for i := 0; i < n; i++ {
			x, y, z := s.Center(i)
			u[i] = math.Sin(math.Pi * x)
			v[i] = math.Cos(math.Pi * y)
			w[i] = x * y * z
		}
		b := make([]float64, n)
		s.Divergence(u, v, w, b)
		x := make([]float64, n)
		res, err := s.SolveNeumann(b, x, Options{Tol: 1e-8})
		if err != nil {
			t.Fatal(err)
		}
		return res, x
	}

	refRes, refX := solveWith(1)
	if !refRes.Converged {
		t.Fatalf("serial SolveNeumann did not converge: %+v", refRes)
	}
	for _, workers := range []int{2, 4} {
		res, x := solveWith(workers)
		if res.Iterations != refRes.Iterations || res.Residual != refRes.Residual {
			t.Errorf("workers=%d: (iters %d, res %v), serial (%d, %v)",
				workers, res.Iterations, res.Residual, refRes.Iterations, refRes.Residual)
		}
		for i := range x {
			if x[i] != refX[i] {
				t.Fatalf("workers=%d: x[%d] differs bitwise", workers, i)
			}
		}
	}
}

// TestMultigridWorkerCountInvariant: V-cycle counts and residual history
// are worker-count-invariant too.
func TestMultigridWorkerCountInvariant(t *testing.T) {
	solveWith := func(workers int) (Result, []float64) {
		mg, err := NewUniformMultigrid(4)
		if err != nil {
			t.Fatal(err)
		}
		mg.SetWorkers(workers)
		n := mg.N()
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			x, y, z := mg.Fine().Center(i)
			b[i] = 3 * math.Pi * math.Pi * math.Sin(math.Pi*x) * math.Sin(math.Pi*y) * math.Sin(math.Pi*z)
		}
		x := make([]float64, n)
		res, err := mg.Solve(b, x, Options{Tol: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		return res, x
	}

	refRes, refX := solveWith(1)
	if !refRes.Converged {
		t.Fatalf("serial multigrid did not converge: %+v", refRes)
	}
	for _, workers := range []int{2, 4} {
		res, x := solveWith(workers)
		if res.Iterations != refRes.Iterations || res.Residual != refRes.Residual {
			t.Errorf("workers=%d: (cycles %d, res %v), serial (%d, %v)",
				workers, res.Iterations, res.Residual, refRes.Iterations, refRes.Residual)
		}
		for i := range x {
			if x[i] != refX[i] {
				t.Fatalf("workers=%d: x[%d] differs bitwise", workers, i)
			}
		}
	}
}

// TestCGZeroRHS: an all-zero right-hand side must return the converged
// zero solution, not NaN residuals from dividing by norm0 = 0.
func TestCGZeroRHS(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s, err := Build(adaptiveLeaves(3))
		if err != nil {
			t.Fatal(err)
		}
		s.SetWorkers(workers)
		n := s.N()
		b := make([]float64, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i) - 7 // stale warm start that must be discarded
		}
		res, err := s.Solve(b, x, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged || res.Iterations != 0 {
			t.Fatalf("workers=%d: zero RHS gave %+v, want converged in 0 iterations", workers, res)
		}
		if math.IsNaN(res.Residual) {
			t.Fatalf("workers=%d: NaN residual on zero RHS", workers)
		}
		for i := range x {
			if x[i] != 0 {
				t.Fatalf("workers=%d: x[%d] = %v, want 0", workers, i, x[i])
			}
		}
	}
}

// TestSolveNeumannZeroRHS: the singular solve's zero-RHS answer is the
// mean-free representative x = 0, even from a nonzero warm start.
func TestSolveNeumannZeroRHS(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s, err := Build(adaptiveLeaves(3))
		if err != nil {
			t.Fatal(err)
		}
		s.SetWorkers(workers)
		n := s.N()
		b := make([]float64, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(float64(i))
		}
		res, err := s.SolveNeumann(b, x, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged || res.Iterations != 0 {
			t.Fatalf("workers=%d: zero RHS gave %+v, want converged in 0 iterations", workers, res)
		}
		for i := range x {
			if x[i] != 0 {
				t.Fatalf("workers=%d: x[%d] = %v, want 0", workers, i, x[i])
			}
		}
	}
}

// benchSystem builds the full uniform mesh at the given level (level 6 =
// 64^3 = 262144 cells, the acceptance-criteria size).
func benchSystem(b *testing.B, level uint8) *System {
	b.Helper()
	tr := octree.New()
	tr.RefineWhere(func(morton.Code) bool { return true }, level)
	s, err := Build(tr.LeafCodes())
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// benchSolve runs a fixed 30 CG iterations (tolerance unreachable) so
// all variants do identical work and ns/op compares cleanly. reference
// selects the legacy AoS face-list layout; the default is the tiled CSR
// SoA sweep, so Serial-vs-TiledSerial isolates the layout win and
// TiledSerial-vs-Parallel isolates the scheduling win.
func benchSolve(b *testing.B, workers int, reference bool) {
	s := benchSystem(b, 6)
	s.SetWorkers(workers)
	s.SetReferenceMode(reference)
	n := s.N()
	rhs := randomRHS(n, 11)
	x := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = 0
		}
		if _, err := s.Solve(rhs, x, Options{Tol: 1e-300, MaxIter: 30}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "cells")
	b.ReportMetric(float64(parallel.Clamp(workers)), "workers")
}

func BenchmarkSolveSerial(b *testing.B)      { benchSolve(b, 1, true) }
func BenchmarkSolveTiledSerial(b *testing.B) { benchSolve(b, 1, false) }
func BenchmarkSolveParallel(b *testing.B)    { benchSolve(b, 4, false) }
