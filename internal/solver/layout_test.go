package solver

import (
	"math/rand"
	"testing"
)

// TestCSRMatchesReferenceBitIdentical pins the layout contract: every
// kernel must produce bit-identical output sweeping the flat CSR arrays
// and sweeping the legacy AoS face lists, on an adaptive mesh where
// matched, coarse, fine and wall faces all occur.
func TestCSRMatchesReferenceBitIdentical(t *testing.T) {
	leaves := adaptiveLeaves(4)
	csr, err := Build(leaves)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Build(leaves)
	if err != nil {
		t.Fatal(err)
	}
	ref.SetReferenceMode(true)
	n := csr.N()

	rng := rand.New(rand.NewSource(17))
	vec := func() []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	check := func(kernel string, a, b []float64) {
		t.Helper()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: cell %d: csr %v, reference %v (must be bit-identical)", kernel, i, a[i], b[i])
			}
		}
	}

	x, u, v, w, p := vec(), vec(), vec(), vec(), vec()
	ya, yb := make([]float64, n), make([]float64, n)

	csr.Apply(x, ya)
	ref.Apply(x, yb)
	check("Apply", ya, yb)

	csr.ApplyNeumann(x, ya)
	ref.ApplyNeumann(x, yb)
	check("ApplyNeumann", ya, yb)

	csr.Divergence(u, v, w, ya)
	ref.Divergence(u, v, w, yb)
	check("Divergence", ya, yb)

	gxa, gya, gza := make([]float64, n), make([]float64, n), make([]float64, n)
	gxb, gyb, gzb := make([]float64, n), make([]float64, n), make([]float64, n)
	csr.Gradient(p, gxa, gya, gza)
	ref.Gradient(p, gxb, gyb, gzb)
	check("Gradient.x", gxa, gxb)
	check("Gradient.y", gya, gyb)
	check("Gradient.z", gza, gzb)

	csr.ProjectedDivergence(u, v, w, p, 0.01, ya)
	ref.ProjectedDivergence(u, v, w, p, 0.01, yb)
	check("ProjectedDivergence", ya, yb)

	// End-to-end: whole solves agree bitwise, iterations and all.
	b := vec()
	xa, xb := make([]float64, n), make([]float64, n)
	ra, err := csr.Solve(b, xa, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ref.Solve(b, xb, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Fatalf("Solve results diverged: csr %+v, reference %+v", ra, rb)
	}
	check("Solve.x", xa, xb)

	csr.Divergence(u, v, w, b)
	for i := range xa {
		xa[i], xb[i] = 0, 0
	}
	ra, err = csr.SolveNeumann(b, xa, Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	rb, err = ref.SolveNeumann(b, xb, Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Fatalf("SolveNeumann results diverged: csr %+v, reference %+v", ra, rb)
	}
	check("SolveNeumann.x", xa, xb)
}

// TestCellAtMatchesReference: the sorted-key binary search must locate
// exactly the cell the legacy map-probe ancestor walk did, for random
// interior points, points on cell boundaries, and points outside the
// domain.
func TestCellAtMatchesReference(t *testing.T) {
	s, err := Build(adaptiveLeaves(5))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	probe := func(x, y, z float64) {
		t.Helper()
		i, ok := s.CellAt(x, y, z)
		j, ok2 := s.referenceCellAt(x, y, z)
		if ok != ok2 || (ok && i != j) {
			t.Fatalf("CellAt(%v, %v, %v) = (%d, %v), reference (%d, %v)", x, y, z, i, ok, j, ok2)
		}
	}
	for k := 0; k < 2000; k++ {
		probe(rng.Float64(), rng.Float64(), rng.Float64())
	}
	// Cell corners and centers of every cell.
	for _, c := range s.Codes() {
		x, y, z := c.Center()
		e := c.Extent()
		probe(x, y, z)
		probe(x-e/2, y-e/2, z-e/2)
	}
	// Outside and at the far boundary.
	probe(-0.1, 0.5, 0.5)
	probe(0.5, 1.0, 0.5)
	probe(1.5, 0.5, 0.5)
	probe(0, 0, 0)
}
