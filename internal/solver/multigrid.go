package solver

import (
	"fmt"
	"math"

	"pmoctree/internal/morton"
	"pmoctree/internal/octree"
)

// Multigrid is a geometric V-cycle solver for the Dirichlet Poisson
// problem on UNIFORM octree meshes — the solver family Gerris uses. The
// octree is its own grid hierarchy: level l's cells are the parents of
// level l+1's, finite-volume restriction is summation of child residuals,
// and prolongation is piecewise-constant injection. Iteration counts stay
// flat as the mesh refines (O(N) total work), which is what distinguishes
// it from the CG path (System.Solve) that also handles adaptive meshes.
type Multigrid struct {
	// systems[k] is the operator at level k+1 (systems[len-1] is the
	// finest).
	systems []*System
	// parent[k][i] maps fine cell i at systems[k] to its parent's index
	// in systems[k-1].
	parent [][]int

	// Smoother parameters: damped-Jacobi sweeps before/after coarse
	// correction.
	PreSmooth, PostSmooth int
	Omega                 float64
}

// NewUniformMultigrid builds the hierarchy for the full uniform mesh at
// the given level (>= 1).
func NewUniformMultigrid(level uint8) (*Multigrid, error) {
	if level < 1 {
		return nil, fmt.Errorf("solver: multigrid needs level >= 1")
	}
	mg := &Multigrid{PreSmooth: 4, PostSmooth: 4, Omega: 0.85}
	for l := uint8(1); l <= level; l++ {
		tr := octree.New()
		tr.RefineWhere(func(morton.Code) bool { return true }, l)
		s, err := Build(tr.LeafCodes())
		if err != nil {
			return nil, err
		}
		mg.systems = append(mg.systems, s)
	}
	// Parent maps: child code's ancestor one level up.
	mg.parent = make([][]int, len(mg.systems))
	for k := 1; k < len(mg.systems); k++ {
		fine, coarse := mg.systems[k], mg.systems[k-1]
		m := make([]int, fine.N())
		for i, c := range fine.codes {
			p, ok := coarse.index[c.Parent()]
			if !ok {
				return nil, fmt.Errorf("solver: missing parent of %v in level %d", c, k)
			}
			m[i] = p
		}
		mg.parent[k] = m
	}
	return mg, nil
}

// Fine returns the finest-level operator (for assembling right-hand
// sides and reading cell geometry).
func (mg *Multigrid) Fine() *System { return mg.systems[len(mg.systems)-1] }

// N returns the fine-grid cell count.
func (mg *Multigrid) N() int { return mg.Fine().N() }

// smooth performs damped-Jacobi sweeps on A x = rhs at level k.
func (mg *Multigrid) smooth(k int, x, rhs, scratch []float64, sweeps int) {
	s := mg.systems[k]
	for it := 0; it < sweeps; it++ {
		s.Apply(x, scratch)
		for i := range x {
			x[i] += mg.Omega * (rhs[i] - scratch[i]) / s.diag[i]
		}
	}
}

// vcycle runs one V-cycle at level k for A x = rhs (integrated FV units).
func (mg *Multigrid) vcycle(k int, x, rhs []float64) {
	s := mg.systems[k]
	scratch := make([]float64, s.N())
	if k == 0 {
		// Coarsest grid (8 cells): smooth to convergence.
		mg.smooth(0, x, rhs, scratch, 50)
		return
	}
	mg.smooth(k, x, rhs, scratch, mg.PreSmooth)

	// Residual, restricted by summation (FV integrated quantities).
	s.Apply(x, scratch)
	coarse := mg.systems[k-1]
	crhs := make([]float64, coarse.N())
	for i := range scratch {
		crhs[mg.parent[k][i]] += rhs[i] - scratch[i]
	}
	ce := make([]float64, coarse.N())
	mg.vcycle(k-1, ce, crhs)

	// Prolongate (inject) and correct.
	for i := range x {
		x[i] += ce[mg.parent[k][i]]
	}
	mg.smooth(k, x, rhs, scratch, mg.PostSmooth)
}

// Solve runs V-cycles on A x = b*V until the relative residual drops
// below opt.Tol. Result.Iterations counts V-cycles.
func (mg *Multigrid) Solve(b []float64, x []float64, opt Options) (Result, error) {
	s := mg.Fine()
	n := s.N()
	if len(b) != n || len(x) != n {
		return Result{}, fmt.Errorf("solver: vector length %d/%d, want %d", len(b), len(x), n)
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 100
	}
	rhs := make([]float64, n)
	for i, c := range s.codes {
		e := c.Extent()
		rhs[i] = b[i] * e * e * e
	}
	norm0 := math.Sqrt(dot(rhs, rhs))
	if norm0 == 0 {
		for i := range x {
			x[i] = 0
		}
		return Result{Converged: true}, nil
	}
	r := make([]float64, n)
	var res Result
	for res.Iterations = 0; res.Iterations < opt.MaxIter; res.Iterations++ {
		s.Apply(x, r)
		for i := range r {
			r[i] = rhs[i] - r[i]
		}
		res.Residual = math.Sqrt(dot(r, r)) / norm0
		if res.Residual <= opt.Tol {
			res.Converged = true
			return res, nil
		}
		mg.vcycle(len(mg.systems)-1, x, rhs)
	}
	s.Apply(x, r)
	for i := range r {
		r[i] = rhs[i] - r[i]
	}
	res.Residual = math.Sqrt(dot(r, r)) / norm0
	res.Converged = res.Residual <= opt.Tol
	return res, nil
}
