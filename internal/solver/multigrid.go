package solver

import (
	"fmt"

	"pmoctree/internal/morton"
	"pmoctree/internal/octree"
	"pmoctree/internal/parallel"
)

// Multigrid is a geometric V-cycle solver for the Dirichlet Poisson
// problem on UNIFORM octree meshes — the solver family Gerris uses. The
// octree is its own grid hierarchy: level l's cells are the parents of
// level l+1's, finite-volume restriction is summation of child residuals,
// and prolongation is piecewise-constant injection. Iteration counts stay
// flat as the mesh refines (O(N) total work), which is what distinguishes
// it from the CG path (System.Solve) that also handles adaptive meshes.
type Multigrid struct {
	// systems[k] is the operator at level k+1 (systems[len-1] is the
	// finest).
	systems []*System
	// parent[k][i] maps fine cell i at systems[k] to its parent's index
	// in systems[k-1].
	parent [][]int
	// children[k][j] lists the fine indices at systems[k] owned by coarse
	// cell j at systems[k-1], in ascending fine order — the inverse of
	// parent, so restriction can GATHER per coarse cell instead of
	// scattering per fine cell. The gather visits each parent's children
	// in the same order the serial scatter did, so restricted residuals
	// are bit-identical at any worker count.
	children [][][]int

	// Smoother parameters: damped-Jacobi sweeps before/after coarse
	// correction.
	PreSmooth, PostSmooth int
	Omega                 float64

	// pool schedules the level sweeps; nil runs them inline.
	pool *parallel.Pool
}

// SetWorkers sets the worker count for all level sweeps and reductions
// (n <= 0 selects GOMAXPROCS, 1 restores serial execution). Residual
// histories and V-cycle counts are bit-identical for every n.
func (mg *Multigrid) SetWorkers(n int) {
	if n == 1 {
		mg.pool = nil
	} else {
		mg.pool = parallel.New(n)
	}
	for _, s := range mg.systems {
		s.pool = mg.pool
	}
}

// SetPool attaches a caller-owned pool to every level; nil restores
// serial execution.
func (mg *Multigrid) SetPool(p *parallel.Pool) {
	mg.pool = p
	for _, s := range mg.systems {
		s.pool = p
	}
}

// Workers reports the configured scheduling width.
func (mg *Multigrid) Workers() int { return mg.pool.Workers() }

// NewUniformMultigrid builds the hierarchy for the full uniform mesh at
// the given level (>= 1).
func NewUniformMultigrid(level uint8) (*Multigrid, error) {
	if level < 1 {
		return nil, fmt.Errorf("solver: multigrid needs level >= 1")
	}
	mg := &Multigrid{PreSmooth: 4, PostSmooth: 4, Omega: 0.85}
	for l := uint8(1); l <= level; l++ {
		tr := octree.New()
		tr.RefineWhere(func(morton.Code) bool { return true }, l)
		s, err := Build(tr.LeafCodes())
		if err != nil {
			return nil, err
		}
		mg.systems = append(mg.systems, s)
	}
	// Parent maps: child code's ancestor one level up, plus the inverse
	// children lists for gather-style restriction.
	mg.parent = make([][]int, len(mg.systems))
	mg.children = make([][][]int, len(mg.systems))
	for k := 1; k < len(mg.systems); k++ {
		fine, coarse := mg.systems[k], mg.systems[k-1]
		m := make([]int, fine.N())
		kids := make([][]int, coarse.N())
		for i, c := range fine.codes {
			p, ok := coarse.index[c.Parent()]
			if !ok {
				return nil, fmt.Errorf("solver: missing parent of %v in level %d", c, k)
			}
			m[i] = p
			kids[p] = append(kids[p], i)
		}
		mg.parent[k] = m
		mg.children[k] = kids
	}
	return mg, nil
}

// Fine returns the finest-level operator (for assembling right-hand
// sides and reading cell geometry).
func (mg *Multigrid) Fine() *System { return mg.systems[len(mg.systems)-1] }

// N returns the fine-grid cell count.
func (mg *Multigrid) N() int { return mg.Fine().N() }

// smooth performs damped-Jacobi sweeps on A x = rhs at level k.
func (mg *Multigrid) smooth(k int, x, rhs, scratch []float64, sweeps int) {
	s := mg.systems[k]
	for it := 0; it < sweeps; it++ {
		s.Apply(x, scratch)
		mg.pool.RunMin(len(x), minAxpy, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x[i] += mg.Omega * (rhs[i] - scratch[i]) / s.diag[i]
			}
		})
	}
}

// vcycle runs one V-cycle at level k for A x = rhs (integrated FV units).
func (mg *Multigrid) vcycle(k int, x, rhs []float64) {
	s := mg.systems[k]
	scratch := make([]float64, s.N())
	if k == 0 {
		// Coarsest grid (8 cells): smooth to convergence.
		mg.smooth(0, x, rhs, scratch, 50)
		return
	}
	mg.smooth(k, x, rhs, scratch, mg.PreSmooth)

	// Residual, restricted by summation (FV integrated quantities). The
	// parallel form gathers per coarse cell — a scatter over fine cells
	// would race — visiting children in the serial scatter's order, so
	// the restriction is bit-identical at any worker count.
	s.Apply(x, scratch)
	coarse := mg.systems[k-1]
	crhs := make([]float64, coarse.N())
	kids := mg.children[k]
	mg.pool.RunMin(coarse.N(), minStencil, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			acc := 0.0
			for _, i := range kids[j] {
				acc += rhs[i] - scratch[i]
			}
			crhs[j] = acc
		}
	})
	ce := make([]float64, coarse.N())
	mg.vcycle(k-1, ce, crhs)

	// Prolongate (inject) and correct.
	parent := mg.parent[k]
	mg.pool.RunMin(len(x), minAxpy, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] += ce[parent[i]]
		}
	})
	mg.smooth(k, x, rhs, scratch, mg.PostSmooth)
}

// Solve runs V-cycles on A x = b*V until the relative residual drops
// below opt.Tol. Result.Iterations counts V-cycles.
func (mg *Multigrid) Solve(b []float64, x []float64, opt Options) (Result, error) {
	s := mg.Fine()
	n := s.N()
	if len(b) != n || len(x) != n {
		return Result{}, fmt.Errorf("solver: vector length %d/%d, want %d", len(b), len(x), n)
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 100
	}
	rhs := make([]float64, n)
	mg.pool.RunMin(n, minAxpy, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := s.codes[i].Extent()
			rhs[i] = b[i] * e * e * e
		}
	})
	// All-zero right-hand side: the exact solution is x = 0, and norm0
	// would otherwise divide every residual into NaN.
	norm0 := mg.pool.Norm2(rhs)
	if norm0 == 0 {
		for i := range x {
			x[i] = 0
		}
		return Result{Converged: true}, nil
	}
	r := make([]float64, n)
	residual := func() float64 {
		s.Apply(x, r)
		mg.pool.RunMin(n, minAxpy, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				r[i] = rhs[i] - r[i]
			}
		})
		return mg.pool.Norm2(r) / norm0
	}
	var res Result
	for res.Iterations = 0; res.Iterations < opt.MaxIter; res.Iterations++ {
		res.Residual = residual()
		if res.Residual <= opt.Tol {
			res.Converged = true
			return res, nil
		}
		mg.vcycle(len(mg.systems)-1, x, rhs)
	}
	res.Residual = residual()
	res.Converged = res.Residual <= opt.Tol
	return res, nil
}
