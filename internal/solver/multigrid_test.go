package solver

import (
	"math"
	"testing"
)

func TestMultigridSolvesManufactured(t *testing.T) {
	mg, err := NewUniformMultigrid(4)
	if err != nil {
		t.Fatal(err)
	}
	s := mg.Fine()
	n := s.N()
	b := make([]float64, n)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		cx, cy, cz := s.Center(i)
		b[i] = 3 * math.Pi * math.Pi * manufactured(cx, cy, cz)
	}
	res, err := mg.Solve(b, x, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	// Discretization error vs the exact solution.
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		cx, cy, cz := s.Center(i)
		e := s.Extent(i)
		v := e * e * e
		d := x[i] - manufactured(cx, cy, cz)
		num += d * d * v
		den += manufactured(cx, cy, cz) * manufactured(cx, cy, cz) * v
	}
	if rel := math.Sqrt(num / den); rel > 0.05 {
		t.Errorf("relative L2 error %v", rel)
	}
}

func TestMultigridMatchesCG(t *testing.T) {
	mg, err := NewUniformMultigrid(3)
	if err != nil {
		t.Fatal(err)
	}
	s := mg.Fine()
	n := s.N()
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		cx, cy, cz := s.Center(i)
		b[i] = cx + 2*cy - cz
	}
	xmg := make([]float64, n)
	xcg := make([]float64, n)
	if _, err := mg.Solve(b, xmg, Options{Tol: 1e-11}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(b, xcg, Options{Tol: 1e-11}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(xmg[i]-xcg[i]) > 1e-7*(1+math.Abs(xcg[i])) {
			t.Fatalf("cell %d: MG %v vs CG %v", i, xmg[i], xcg[i])
		}
	}
}

func TestMultigridIterationsFlatAcrossLevels(t *testing.T) {
	// The point of multigrid: V-cycle counts stay ~constant as the mesh
	// refines, while CG iterations grow like 1/h.
	var mgIters, cgIters []int
	for _, level := range []uint8{3, 4, 5} {
		mg, err := NewUniformMultigrid(level)
		if err != nil {
			t.Fatal(err)
		}
		s := mg.Fine()
		n := s.N()
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			cx, cy, cz := s.Center(i)
			b[i] = 3 * math.Pi * math.Pi * manufactured(cx, cy, cz)
		}
		x := make([]float64, n)
		res, err := mg.Solve(b, x, Options{Tol: 1e-8})
		if err != nil || !res.Converged {
			t.Fatalf("level %d MG: %+v %v", level, res, err)
		}
		mgIters = append(mgIters, res.Iterations)

		x2 := make([]float64, n)
		res2, err := s.Solve(b, x2, Options{Tol: 1e-8})
		if err != nil || !res2.Converged {
			t.Fatalf("level %d CG: %+v %v", level, res2, err)
		}
		cgIters = append(cgIters, res2.Iterations)
	}
	// Cell-centered injection multigrid is mildly h-dependent near the
	// Dirichlet walls, but its growth must stay far below CG's ~1/h.
	mgGrowth := float64(mgIters[2]) / float64(mgIters[0])
	cgGrowth := float64(cgIters[2]) / float64(cgIters[0])
	if mgGrowth > 2 {
		t.Errorf("MG iterations grew %vx: %v", mgGrowth, mgIters)
	}
	if cgGrowth < mgGrowth*1.3 {
		t.Errorf("CG growth %vx not clearly above MG growth %vx (CG %v, MG %v)",
			cgGrowth, mgGrowth, cgIters, mgIters)
	}
	t.Logf("V-cycles per level: %v; CG iterations: %v", mgIters, cgIters)
}

func TestMultigridZeroRHS(t *testing.T) {
	mg, err := NewUniformMultigrid(2)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, mg.N())
	x := make([]float64, mg.N())
	x[0] = 3
	res, err := mg.Solve(b, x, Options{})
	if err != nil || !res.Converged {
		t.Fatalf("%+v %v", res, err)
	}
	for i, v := range x {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("x[%d] = %v", i, v)
		}
	}
}

func TestMultigridErrors(t *testing.T) {
	if _, err := NewUniformMultigrid(0); err == nil {
		t.Error("level 0 accepted")
	}
	mg, _ := NewUniformMultigrid(2)
	if _, err := mg.Solve(make([]float64, 1), make([]float64, mg.N()), Options{}); err == nil {
		t.Error("length mismatch accepted")
	}
}
