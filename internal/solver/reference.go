package solver

import "pmoctree/internal/morton"

// Legacy AoS sweeps, selected by SetReferenceMode. Each kernel walks the
// per-cell []face lists exactly as the pre-CSR solver did — one slice
// header and one 32-byte face record per flux, with geometry recomputed
// from the codes. They are kept as the A/B baseline the layout benchmarks
// compare against and as the ground truth the bit-identity tests pin the
// CSR sweeps to: the accumulation order and every floating-point
// expression match the CSR forms term for term, so the two layouts round
// identically.

func (s *System) applyRef(x, y []float64) {
	s.pool.RunMin(len(s.codes), minStencil, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			acc := s.diag[i] * x[i]
			for _, f := range s.faces[i] {
				if f.neighbor >= 0 {
					acc -= f.t * x[f.neighbor]
				}
			}
			y[i] = acc
		}
	})
}

func (s *System) applyNeumannRef(x, y []float64) {
	s.pool.RunMin(len(s.codes), minStencil, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			acc := 0.0
			for _, f := range s.faces[i] {
				if f.neighbor < 0 {
					continue
				}
				acc += f.t * (x[i] - x[f.neighbor])
			}
			y[i] = acc
		}
	})
}

func (s *System) divergenceRef(u, v, w []float64, out []float64) {
	comp := [3][]float64{u, v, w}
	s.pool.RunMin(len(s.codes), minStencil, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := s.codes[i].Extent()
			vol := e * e * e
			acc := 0.0
			for _, f := range s.faces[i] {
				axis, sign := axisOf(f.dir)
				var uf float64
				if f.neighbor >= 0 {
					uf = 0.5 * (comp[axis][i] + comp[axis][f.neighbor])
				} else {
					uf = 0 // wall: no flow through
				}
				acc += sign * f.area * uf
			}
			out[i] = acc / vol
		}
	})
}

func (s *System) gradientRef(p []float64, gx, gy, gz []float64) {
	out := [3][]float64{gx, gy, gz}
	s.pool.RunMin(len(s.codes), minStencil, func(lo, hi int) {
		var wsum [3]float64
		var acc [3]float64
		for i := lo; i < hi; i++ {
			h := s.codes[i].Extent()
			for a := 0; a < 3; a++ {
				wsum[a], acc[a] = 0, 0
			}
			for _, f := range s.faces[i] {
				if f.neighbor < 0 {
					continue
				}
				axis, sign := axisOf(f.dir)
				hj := s.codes[f.neighbor].Extent()
				d := (h + hj) / 2
				acc[axis] += f.area * sign * (p[f.neighbor] - p[i]) / d
				wsum[axis] += f.area
			}
			for a := 0; a < 3; a++ {
				if wsum[a] > 0 {
					out[a][i] = acc[a] / wsum[a]
				} else {
					out[a][i] = 0
				}
			}
		}
	})
}

func (s *System) projectedDivergenceRef(u, v, w, p []float64, dt float64, out []float64) {
	comp := [3][]float64{u, v, w}
	s.pool.RunMin(len(s.codes), minStencil, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := s.codes[i].Extent()
			vol := e * e * e
			acc := 0.0
			for _, f := range s.faces[i] {
				if f.neighbor < 0 {
					continue
				}
				axis, sign := axisOf(f.dir)
				uf := 0.5 * (comp[axis][i] + comp[axis][f.neighbor])
				acc += sign*f.area*uf - dt*f.t*(p[f.neighbor]-p[i])
			}
			out[i] = acc / vol
		}
	})
}

// neumannDiag fills the wall-free (Neumann) diagonal used by
// SolveNeumann's Jacobi preconditioner, in whichever layout is active.
func (s *System) neumannDiag(diag []float64) {
	if s.ref {
		s.pool.RunMin(len(s.codes), minStencil, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				for _, f := range s.faces[i] {
					if f.neighbor >= 0 {
						diag[i] += f.t
					}
				}
				if diag[i] == 0 {
					diag[i] = 1 // isolated cell (single-cell mesh)
				}
			}
		})
		return
	}
	rs, nb, tr := s.rowStart, s.nb, s.tr
	s.pool.RunMin(len(s.codes), minStencil, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for k := rs[i]; k < rs[i+1]; k++ {
				if nb[k] >= 0 {
					diag[i] += tr[k]
				}
			}
			if diag[i] == 0 {
				diag[i] = 1 // isolated cell (single-cell mesh)
			}
		}
	})
}

// referenceCellAt is the pre-CSR point lookup: an exact-match map probe at
// the finest level followed by an ancestor walk. Kept for the equivalence
// test pinning CellAt's binary search to it.
func (s *System) referenceCellAt(x, y, z float64) (int, bool) {
	if x < 0 || x >= 1 || y < 0 || y >= 1 || z < 0 || z >= 1 {
		return 0, false
	}
	grid := float64(uint64(1) << morton.MaxLevel)
	code := morton.Encode(uint32(x*grid), uint32(y*grid), uint32(z*grid), morton.MaxLevel)
	if j, ok := s.index[code]; ok {
		return j, true
	}
	if j, _, ok := s.findCoarser(code, morton.MaxLevel); ok {
		return j, true
	}
	return 0, false
}
