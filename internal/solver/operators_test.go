package solver

import (
	"math"
	"math/rand"
	"testing"
)

func TestDivergenceOfLinearField(t *testing.T) {
	s, err := Build(uniformLeaves(3))
	if err != nil {
		t.Fatal(err)
	}
	n := s.N()
	u := make([]float64, n)
	v := make([]float64, n)
	w := make([]float64, n)
	out := make([]float64, n)
	// u = x, v = 2y, w = 3z: div = 6 in the interior (walls clamp the
	// boundary cells).
	for i := 0; i < n; i++ {
		x, y, z := s.Center(i)
		u[i], v[i], w[i] = x, 2*y, 3*z
	}
	s.Divergence(u, v, w, out)
	h := s.Extent(0)
	for i := 0; i < n; i++ {
		x, y, z := s.Center(i)
		interior := x > h && x < 1-h && y > h && y < 1-h && z > h && z < 1-h
		if interior && math.Abs(out[i]-6) > 1e-9 {
			t.Fatalf("interior divergence at cell %d = %v, want 6", i, out[i])
		}
	}
}

func TestGradientOfLinearField(t *testing.T) {
	s, err := Build(uniformLeaves(3))
	if err != nil {
		t.Fatal(err)
	}
	n := s.N()
	p := make([]float64, n)
	gx := make([]float64, n)
	gy := make([]float64, n)
	gz := make([]float64, n)
	for i := 0; i < n; i++ {
		x, y, z := s.Center(i)
		p[i] = 2*x - y + 3*z
	}
	s.Gradient(p, gx, gy, gz)
	h := s.Extent(0)
	for i := 0; i < n; i++ {
		x, y, z := s.Center(i)
		interior := x > h && x < 1-h && y > h && y < 1-h && z > h && z < 1-h
		if !interior {
			continue // one-sided estimates at walls
		}
		if math.Abs(gx[i]-2) > 1e-9 || math.Abs(gy[i]+1) > 1e-9 || math.Abs(gz[i]-3) > 1e-9 {
			t.Fatalf("gradient at cell %d = (%v,%v,%v), want (2,-1,3)", i, gx[i], gy[i], gz[i])
		}
	}
}

func TestApplyNeumannNullSpace(t *testing.T) {
	s, err := Build(adaptiveLeaves(4))
	if err != nil {
		t.Fatal(err)
	}
	n := s.N()
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 7.25 // constants are the null space
	}
	s.ApplyNeumann(x, y)
	for i, v := range y {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("A_N * const != 0 at cell %d: %v", i, v)
		}
	}
}

func TestApplyNeumannSymmetric(t *testing.T) {
	s, err := Build(adaptiveLeaves(4))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	n := s.N()
	x := make([]float64, n)
	y := make([]float64, n)
	ax := make([]float64, n)
	ay := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
		y[i] = r.NormFloat64()
	}
	s.ApplyNeumann(x, ax)
	s.ApplyNeumann(y, ay)
	if l, rr := dot(ax, y), dot(x, ay); math.Abs(l-rr) > 1e-9*math.Max(math.Abs(l), 1) {
		t.Errorf("A_N not symmetric: %v vs %v", l, rr)
	}
}

func TestSolveNeumannManufactured(t *testing.T) {
	// p = cos(pi x) cos(pi y) cos(pi z) has zero normal derivative at the
	// walls; -lap p = 3 pi^2 p, and both sides are mean-free.
	s, err := Build(uniformLeaves(4))
	if err != nil {
		t.Fatal(err)
	}
	n := s.N()
	b := make([]float64, n)
	x := make([]float64, n)
	exact := make([]float64, n)
	for i := 0; i < n; i++ {
		cx, cy, cz := s.Center(i)
		exact[i] = math.Cos(math.Pi*cx) * math.Cos(math.Pi*cy) * math.Cos(math.Pi*cz)
		b[i] = 3 * math.Pi * math.Pi * exact[i]
	}
	res, err := s.SolveNeumann(b, x, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	// Relative L2 error against the (mean-free) exact solution.
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		e := s.Extent(i)
		v := e * e * e
		d := x[i] - exact[i]
		num += d * d * v
		den += exact[i] * exact[i] * v
	}
	if rel := math.Sqrt(num / den); rel > 0.05 {
		t.Errorf("Neumann solve relative L2 error %v", rel)
	}
}

func TestSolveNeumannMeanFree(t *testing.T) {
	s, err := Build(adaptiveLeaves(4))
	if err != nil {
		t.Fatal(err)
	}
	n := s.N()
	b := make([]float64, n)
	x := make([]float64, n)
	r := rand.New(rand.NewSource(6))
	// A compatible (volume-mean-free) random source.
	var sum, vol float64
	for i := 0; i < n; i++ {
		b[i] = r.NormFloat64()
		e := s.Extent(i)
		sum += b[i] * e * e * e
		vol += e * e * e
	}
	for i := 0; i < n; i++ {
		b[i] -= sum / vol
	}
	if _, err := s.SolveNeumann(b, x, Options{}); err != nil {
		t.Fatal(err)
	}
	var xm float64
	for i := 0; i < n; i++ {
		e := s.Extent(i)
		xm += x[i] * e * e * e
	}
	if math.Abs(xm/vol) > 1e-9 {
		t.Errorf("solution mean %v not pinned to zero", xm/vol)
	}
}

func TestSolveNeumannVectorLength(t *testing.T) {
	s, _ := Build(uniformLeaves(1))
	if _, err := s.SolveNeumann(make([]float64, 1), make([]float64, s.N()), Options{}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestProjectedDivergenceExact(t *testing.T) {
	// The face-corrected field after a Neumann solve is divergence-free
	// to solver tolerance — on uniform AND adaptive meshes.
	run := func(t *testing.T, s *System) {
		n := s.N()
		u := make([]float64, n)
		v := make([]float64, n)
		w := make([]float64, n)
		for i := 0; i < n; i++ {
			x, y, z := s.Center(i)
			u[i] = math.Sin(math.Pi * x)
			v[i] = math.Sin(math.Pi * y)
			w[i] = math.Sin(math.Pi * z)
		}
		div := make([]float64, n)
		s.Divergence(u, v, w, div)
		dt := 1e-3
		b := make([]float64, n)
		for i := range b {
			b[i] = -div[i] / dt
		}
		p := make([]float64, n)
		if _, err := s.SolveNeumann(b, p, Options{Tol: 1e-12}); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, n)
		s.ProjectedDivergence(u, v, w, p, dt, out)
		worst := 0.0
		for _, d := range out {
			if a := math.Abs(d); a > worst {
				worst = a
			}
		}
		maxDiv := 0.0
		for _, d := range div {
			if a := math.Abs(d); a > maxDiv {
				maxDiv = a
			}
		}
		if worst > maxDiv*1e-6 {
			t.Errorf("projected divergence %v vs initial %v: not face-exact", worst, maxDiv)
		}
	}
	s1, err := Build(uniformLeaves(3))
	if err != nil {
		t.Fatal(err)
	}
	t.Run("uniform", func(t *testing.T) { run(t, s1) })
	s2, err := Build(adaptiveLeaves(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Run("adaptive", func(t *testing.T) { run(t, s2) })
}

func TestCellAt(t *testing.T) {
	s, err := Build(adaptiveLeaves(4))
	if err != nil {
		t.Fatal(err)
	}
	// Every cell center maps back to that cell.
	for i := 0; i < s.N(); i++ {
		x, y, z := s.Center(i)
		j, ok := s.CellAt(x, y, z)
		if !ok || j != i {
			t.Fatalf("CellAt(center of %d) = %d, %v", i, j, ok)
		}
	}
	// Out-of-domain points are rejected.
	for _, p := range [][3]float64{{-0.1, 0.5, 0.5}, {0.5, 1.0, 0.5}, {0.5, 0.5, 2}} {
		if _, ok := s.CellAt(p[0], p[1], p[2]); ok {
			t.Errorf("CellAt(%v) accepted an outside point", p)
		}
	}
}

func TestExtentCenterAccessors(t *testing.T) {
	s, _ := Build(uniformLeaves(1))
	if s.Extent(0) != 0.5 {
		t.Errorf("Extent = %v", s.Extent(0))
	}
	x, y, z := s.Center(0)
	if x != 0.25 || y != 0.25 || z != 0.25 {
		t.Errorf("Center = (%v,%v,%v)", x, y, z)
	}
}
