// Package solver implements a cell-centered finite-volume Poisson solver
// on 2:1-balanced adaptive octree meshes — the pressure-projection core a
// Gerris-style incompressible flow solver runs every time step (§4 of the
// paper). Two iterations are provided: geometric multigrid V-cycles on
// uniform hierarchies (Multigrid — the Gerris solver family, with
// iteration counts flat under refinement) and Jacobi-preconditioned
// conjugate gradients (System.Solve / SolveNeumann) for arbitrary
// 2:1-balanced adaptive meshes. Both sweep the same stencils, so the
// memory access pattern the octree observes is identical.
//
// The discretization is the standard graded-octree two-point flux: for
// the face between cells i and j,
//
//	F_ij = T_ij (x_i - x_j),   T_ij = A_f / d_ij
//
// where A_f is the (finer side's) face area and d_ij the center distance.
// Under the 2:1 constraint a face joins cells at most one level apart, so
// every face is either matched (1:1) or split (1:4), and assembling from
// both sides yields a symmetric positive-definite operator. Domain
// boundary faces carry homogeneous Dirichlet conditions through a ghost
// value at the wall.
package solver

import (
	"fmt"
	"math"
	"sort"

	"pmoctree/internal/morton"
	"pmoctree/internal/parallel"
)

// Serial cutoffs for pool.RunMin (pr4: the PR 2 pool parallelized every
// sweep unconditionally, and on small meshes the spawn-and-join overhead
// made 4 workers slower than serial). Stencil sweeps (Apply, Divergence,
// Gradient, restriction) chase face lists and do tens of flops per cell;
// axpy-style vector updates do two or three, so they need a much larger
// range before goroutines pay off.
const (
	minStencil = 4096
	minAxpy    = 1 << 15
)

// face is one flux connection of a cell.
type face struct {
	neighbor int     // index of the adjacent cell, -1 for a wall
	t        float64 // transmissibility A/d
	dir      int     // direction index into dirs (axis + orientation)
	area     float64 // face area
}

// System is the assembled Poisson operator on one mesh snapshot.
//
// The hot kernels sweep the flat CSR face arrays (rowStart/nb/tr/...): one
// contiguous run of neighbor indices and coefficients per cell, in
// ascending Z-order, instead of chasing a []face slice header per cell.
// The legacy AoS layout (faces) is retained behind SetReferenceMode for
// the A/B benchmarks and the bit-identity tests that pin the two layouts
// to the same results (DESIGN.md decision 16).
//
// A System is safe for concurrent read-only use (Apply, Divergence, ...
// into caller-owned output vectors); the iterative solvers own their
// scratch state, so distinct Solve calls on distinct vectors may also run
// concurrently.
type System struct {
	codes []morton.Code
	index map[morton.Code]int
	faces [][]face
	diag  []float64 // sum of transmissibilities per cell

	// CSR face arrays: cell i's faces are entries
	// [rowStart[i], rowStart[i+1]) of nb/tr/fdir/farea, in the same order
	// the AoS assembly produced them (so accumulations are bit-identical).
	rowStart []int32
	nb       []int32 // adjacent cell index, -1 for a wall
	tr       []float64
	fdir     []uint8
	farea    []float64

	// Per-cell geometry, precomputed once at build.
	extent []float64
	vol    []float64 // extent^3, evaluated exactly like the sweeps did

	// Sorted point-location index: keys[k] = codes[perm[k]].Key(),
	// ascending — CellAt binary-searches this instead of probing the map
	// level by level.
	keys []uint64
	perm []int32

	ref bool // sweep the legacy AoS layout instead of CSR

	// pool schedules the matrix-free kernels; nil runs them inline.
	// Reductions go through the pool's blocked summation either way, so
	// results are bit-identical at every worker count.
	pool *parallel.Pool
}

// SetReferenceMode selects the legacy AoS face-list sweeps instead of the
// flat CSR arrays. Results are bit-identical either way; the reference
// path exists so benchmarks can decompose layout from scheduling and so
// tests can pin the identity.
func (s *System) SetReferenceMode(on bool) { s.ref = on }

// SetWorkers sets the worker count for the system's kernels (SpMV,
// axpy-style sweeps, reductions). n <= 0 selects GOMAXPROCS; 1 restores
// serial inline execution. Results are bit-identical for every n — the
// reductions are deterministic blocked sums (see internal/parallel).
func (s *System) SetWorkers(n int) {
	if n == 1 {
		s.pool = nil
		return
	}
	s.pool = parallel.New(n)
}

// SetPool attaches a caller-owned (possibly instrumented) pool; nil
// restores serial execution.
func (s *System) SetPool(p *parallel.Pool) { s.pool = p }

// Workers reports the configured scheduling width.
func (s *System) Workers() int { return s.pool.Workers() }

// dirs are the six face directions.
var dirs = [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}

// Build assembles the operator from the leaf codes of a 2:1-balanced
// octree tiling. It returns an error when the input violates the
// constraint or does not tile the domain.
func Build(leaves []morton.Code) (*System, error) {
	if len(leaves) == 0 {
		return nil, fmt.Errorf("solver: no cells")
	}
	s := &System{
		codes: append([]morton.Code(nil), leaves...),
		index: make(map[morton.Code]int, len(leaves)),
		faces: make([][]face, len(leaves)),
		diag:  make([]float64, len(leaves)),
	}
	vol := 0.0
	for i, c := range s.codes {
		if _, dup := s.index[c]; dup {
			return nil, fmt.Errorf("solver: duplicate cell %v", c)
		}
		s.index[c] = i
		e := c.Extent()
		vol += e * e * e
	}
	if math.Abs(vol-1) > 1e-9 {
		return nil, fmt.Errorf("solver: cells cover volume %v, want 1 (not a tiling)", vol)
	}

	for i, c := range s.codes {
		h := c.Extent()
		l := c.Level()
		for di, d := range dirs {
			n, ok := c.Neighbor(d[0], d[1], d[2])
			if !ok {
				// Domain wall: Dirichlet ghost at distance h/2.
				t := h * h / (h / 2)
				s.faces[i] = append(s.faces[i], face{neighbor: -1, t: t, dir: di, area: h * h})
				s.diag[i] += t
				continue
			}
			if j, ok := s.index[n]; ok {
				// Matched neighbor.
				t := h * h / h
				s.faces[i] = append(s.faces[i], face{neighbor: j, t: t, dir: di, area: h * h})
				s.diag[i] += t
				continue
			}
			// Coarser neighbor: an ancestor of n holds the cell.
			if j, lj, ok := s.findCoarser(n, l); ok {
				hj := 1.0 / float64(uint64(1)<<lj)
				t := h * h / ((h + hj) / 2)
				s.faces[i] = append(s.faces[i], face{neighbor: j, t: t, dir: di, area: h * h})
				s.diag[i] += t
				continue
			}
			// Finer neighbors: the 4 children of n touching this face.
			kids, err := s.fineFaceNeighbors(c, n, d)
			if err != nil {
				return nil, err
			}
			for _, j := range kids {
				hj := s.codes[j].Extent()
				t := hj * hj / ((h + hj) / 2)
				s.faces[i] = append(s.faces[i], face{neighbor: j, t: t, dir: di, area: hj * hj})
				s.diag[i] += t
			}
		}
	}
	s.flatten()
	return s, nil
}

// flatten transposes the AoS face lists into the CSR arrays, precomputes
// per-cell geometry, and builds the sorted point-location index. Face
// order within each row is preserved exactly, so every CSR accumulation
// rounds identically to its AoS counterpart.
func (s *System) flatten() {
	n := len(s.codes)
	total := 0
	for i := range s.faces {
		total += len(s.faces[i])
	}
	s.rowStart = make([]int32, n+1)
	s.nb = make([]int32, 0, total)
	s.tr = make([]float64, 0, total)
	s.fdir = make([]uint8, 0, total)
	s.farea = make([]float64, 0, total)
	s.extent = make([]float64, n)
	s.vol = make([]float64, n)
	for i, fl := range s.faces {
		s.rowStart[i] = int32(len(s.nb))
		for _, f := range fl {
			s.nb = append(s.nb, int32(f.neighbor))
			s.tr = append(s.tr, f.t)
			s.fdir = append(s.fdir, uint8(f.dir))
			s.farea = append(s.farea, f.area)
		}
		e := s.codes[i].Extent()
		s.extent[i] = e
		s.vol[i] = e * e * e
	}
	s.rowStart[n] = int32(len(s.nb))

	s.perm = make([]int32, n)
	for i := range s.perm {
		s.perm[i] = int32(i)
	}
	sort.Slice(s.perm, func(a, b int) bool {
		return s.codes[s.perm[a]].Key() < s.codes[s.perm[b]].Key()
	})
	s.keys = make([]uint64, n)
	for k, p := range s.perm {
		s.keys[k] = s.codes[p].Key()
	}
}

// findCoarser walks up the ancestors of n looking for an existing cell.
func (s *System) findCoarser(n morton.Code, below uint8) (int, uint8, bool) {
	for l := int(below) - 1; l >= 0; l-- {
		anc := n.AncestorAt(uint8(l))
		if j, ok := s.index[anc]; ok {
			return j, uint8(l), true
		}
	}
	return 0, 0, false
}

// fineFaceNeighbors returns the children of n on the face adjacent to c.
// Under 2:1 balance they must exist as cells.
func (s *System) fineFaceNeighbors(c, n morton.Code, d [3]int) ([]int, error) {
	if n.Level() >= morton.MaxLevel {
		return nil, fmt.Errorf("solver: missing neighbor of %v at max level", c)
	}
	var out []int
	for k := 0; k < 8; k++ {
		// The child faces c when its bit along the direction axis is on
		// the side facing BACK toward c. Moving +x from c means the
		// neighbor's near children have x-bit 0; moving -x, x-bit 1.
		xb, yb, zb := k&1, (k>>1)&1, (k>>2)&1
		if d[0] == 1 && xb != 0 || d[0] == -1 && xb != 1 {
			continue
		}
		if d[1] == 1 && yb != 0 || d[1] == -1 && yb != 1 {
			continue
		}
		if d[2] == 1 && zb != 0 || d[2] == -1 && zb != 1 {
			continue
		}
		child := n.Child(k)
		j, ok := s.index[child]
		if !ok {
			return nil, fmt.Errorf("solver: mesh not 2:1 balanced at %v (missing %v)", c, child)
		}
		out = append(out, j)
	}
	return out, nil
}

// N returns the number of cells.
func (s *System) N() int { return len(s.codes) }

// Codes returns the cell codes in assembly order.
func (s *System) Codes() []morton.Code { return s.codes }

// Apply computes y = A x, where A is the (SPD) negative Laplacian with
// Dirichlet walls: (Ax)_i = sum_f T_f (x_i - x_j), wall x_j = 0. Rows are
// independent, so the sweep parallelizes without changing any result bit.
func (s *System) Apply(x, y []float64) {
	if s.ref {
		s.applyRef(x, y)
		return
	}
	rs, nb, tr := s.rowStart, s.nb, s.tr
	s.pool.RunMin(len(s.codes), minStencil, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			acc := s.diag[i] * x[i]
			for k := rs[i]; k < rs[i+1]; k++ {
				if j := nb[k]; j >= 0 {
					acc -= tr[k] * x[j]
				}
			}
			y[i] = acc
		}
	})
}

// Options tunes the CG iteration.
type Options struct {
	// Tol is the relative residual target (default 1e-8).
	Tol float64
	// MaxIter bounds the iteration count (default 10*N).
	MaxIter int
}

// Result reports a completed solve.
type Result struct {
	Iterations int
	Residual   float64 // final relative residual
	Converged  bool
}

// Solve runs Jacobi-preconditioned conjugate gradients on A x = b·V (b is
// a cell-centered source density; the right-hand side integrates it over
// each cell volume). x is overwritten with the solution; pass a zero
// slice for a cold start.
func (s *System) Solve(b []float64, x []float64, opt Options) (Result, error) {
	n := s.N()
	if len(b) != n || len(x) != n {
		return Result{}, fmt.Errorf("solver: vector length %d/%d, want %d", len(b), len(x), n)
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10 * n
	}

	// rhs_i = b_i * V_i (finite-volume integration).
	rhs := make([]float64, n)
	s.pool.RunMin(n, minAxpy, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := s.codes[i].Extent()
			rhs[i] = b[i] * e * e * e
		}
	})

	r := make([]float64, n)
	s.Apply(x, r)
	s.pool.RunMin(n, minAxpy, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r[i] = rhs[i] - r[i]
		}
	})
	z := make([]float64, n)
	precond := func() {
		s.pool.RunMin(n, minAxpy, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				z[i] = r[i] / s.diag[i]
			}
		})
	}
	precond()
	p := append([]float64(nil), z...)
	ap := make([]float64, n)

	rz := s.pool.Dot(r, z)
	// An all-zero right-hand side (no sources anywhere) has the exact
	// solution x = 0; dividing by norm0 would turn every residual into
	// NaN, so report the converged zero solution instead.
	norm0 := s.pool.Norm2(rhs)
	if norm0 == 0 {
		for i := range x {
			x[i] = 0
		}
		return Result{Converged: true}, nil
	}

	var res Result
	for res.Iterations = 0; res.Iterations < opt.MaxIter; res.Iterations++ {
		res.Residual = s.pool.Norm2(r) / norm0
		if res.Residual <= opt.Tol {
			res.Converged = true
			return res, nil
		}
		s.Apply(p, ap)
		alpha := rz / s.pool.Dot(p, ap)
		s.pool.RunMin(n, minAxpy, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x[i] += alpha * p[i]
				r[i] -= alpha * ap[i]
			}
		})
		precond()
		rzNew := s.pool.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		s.pool.RunMin(n, minAxpy, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				p[i] = z[i] + beta*p[i]
			}
		})
	}
	res.Residual = s.pool.Norm2(r) / norm0
	res.Converged = res.Residual <= opt.Tol
	return res, nil
}

// dot is the serial form of the deterministic blocked inner product —
// the same blocking every pool width uses (internal/parallel).
func dot(a, b []float64) float64 {
	return (*parallel.Pool)(nil).Dot(a, b)
}
