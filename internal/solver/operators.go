package solver

import (
	"fmt"
	"sort"

	"pmoctree/internal/morton"
)

// axisOf maps a direction index to its axis (0=x, 1=y, 2=z) and sign.
func axisOf(di int) (axis int, sign float64) {
	axis = di / 2
	if di%2 == 0 {
		sign = 1
	} else {
		sign = -1
	}
	return
}

// Divergence computes the cell-centered discrete divergence of the
// velocity field (u, v, w), per unit volume:
//
//	div_i = (1/V_i) * sum_f A_f * (n_f . u_f)
//
// with face velocity taken as the average of the two adjacent cells and
// zero at walls (no-penetration boundaries).
func (s *System) Divergence(u, v, w []float64, out []float64) {
	if s.ref {
		s.divergenceRef(u, v, w, out)
		return
	}
	comp := [3][]float64{u, v, w}
	rs, nb := s.rowStart, s.nb
	s.pool.RunMin(len(s.codes), minStencil, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			acc := 0.0
			for k := rs[i]; k < rs[i+1]; k++ {
				axis, sign := axisOf(int(s.fdir[k]))
				var uf float64
				if j := nb[k]; j >= 0 {
					uf = 0.5 * (comp[axis][i] + comp[axis][j])
				} else {
					uf = 0 // wall: no flow through
				}
				acc += sign * s.farea[k] * uf
			}
			out[i] = acc / s.vol[i]
		}
	})
}

// Gradient computes a cell-centered estimate of grad(p) using
// transmissibility-weighted face differences (walls contribute nothing:
// homogeneous Neumann for the projection gradient).
func (s *System) Gradient(p []float64, gx, gy, gz []float64) {
	if s.ref {
		s.gradientRef(p, gx, gy, gz)
		return
	}
	out := [3][]float64{gx, gy, gz}
	rs, nb := s.rowStart, s.nb
	// The accumulators live inside the chunk body: hoisting them to
	// function scope (as an earlier revision did) would be a data race
	// once the sweep runs on the pool.
	s.pool.RunMin(len(s.codes), minStencil, func(lo, hi int) {
		var wsum [3]float64
		var acc [3]float64
		for i := lo; i < hi; i++ {
			h := s.extent[i]
			for a := 0; a < 3; a++ {
				wsum[a], acc[a] = 0, 0
			}
			for k := rs[i]; k < rs[i+1]; k++ {
				j := nb[k]
				if j < 0 {
					continue
				}
				axis, sign := axisOf(int(s.fdir[k]))
				d := (h + s.extent[j]) / 2
				acc[axis] += s.farea[k] * sign * (p[j] - p[i]) / d
				wsum[axis] += s.farea[k]
			}
			for a := 0; a < 3; a++ {
				if wsum[a] > 0 {
					out[a][i] = acc[a] / wsum[a]
				} else {
					out[a][i] = 0
				}
			}
		}
	})
}

// ApplyNeumann computes y = A_N x, the Neumann (wall-flux-free) variant
// of the operator: wall faces contribute nothing, so constants span the
// null space. This is the projection operator of incompressible flow with
// no-penetration walls.
func (s *System) ApplyNeumann(x, y []float64) {
	if s.ref {
		s.applyNeumannRef(x, y)
		return
	}
	rs, nb, tr := s.rowStart, s.nb, s.tr
	s.pool.RunMin(len(s.codes), minStencil, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			acc := 0.0
			for k := rs[i]; k < rs[i+1]; k++ {
				j := nb[k]
				if j < 0 {
					continue
				}
				acc += tr[k] * (x[i] - x[j])
			}
			y[i] = acc
		}
	})
}

// SolveNeumann runs CG on the (singular, semidefinite) Neumann operator:
// A_N x = b*V. The right-hand side must be compatible (sum to zero), which
// wall-bounded divergence fields satisfy by the divergence theorem; the
// returned solution is volume-mean-free.
func (s *System) SolveNeumann(b []float64, x []float64, opt Options) (Result, error) {
	n := s.N()
	if len(b) != n || len(x) != n {
		return Result{}, fmt.Errorf("solver: vector length %d/%d, want %d", len(b), len(x), n)
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10 * n
	}
	rhs := make([]float64, n)
	s.pool.RunMin(n, minAxpy, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := s.codes[i].Extent()
			rhs[i] = b[i] * e * e * e
		}
	})
	rhsSum := s.pool.Sum(n, func(i int) float64 { return rhs[i] })
	volSum := s.pool.Sum(n, func(i int) float64 {
		e := s.codes[i].Extent()
		return e * e * e
	})
	// Enforce compatibility exactly: remove the (tiny) incompatible
	// component that floating point left behind.
	s.pool.RunMin(n, minAxpy, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := s.codes[i].Extent()
			rhs[i] -= rhsSum * (e * e * e) / volSum
		}
	})

	// Neumann diagonal (wall terms excluded) for the Jacobi preconditioner.
	diag := make([]float64, n)
	s.neumannDiag(diag)

	r := make([]float64, n)
	s.ApplyNeumann(x, r)
	s.pool.RunMin(n, minAxpy, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r[i] = rhs[i] - r[i]
		}
	})
	z := make([]float64, n)
	s.pool.RunMin(n, minAxpy, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			z[i] = r[i] / diag[i]
		}
	})
	p := append([]float64(nil), z...)
	ap := make([]float64, n)
	rz := s.pool.Dot(r, z)
	norm0 := s.pool.Norm2(rhs)
	if norm0 == 0 {
		// A zero right-hand side means the projection has nothing to do;
		// any constant solves the singular system and the mean-free
		// representative is x = 0. Returning the untouched initial guess
		// here (as an earlier revision did) would silently hand back an
		// unconverged x.
		for i := range x {
			x[i] = 0
		}
		return Result{Converged: true}, nil
	}
	var res Result
	for res.Iterations = 0; res.Iterations < opt.MaxIter; res.Iterations++ {
		res.Residual = s.pool.Norm2(r) / norm0
		if res.Residual <= opt.Tol {
			res.Converged = true
			break
		}
		s.ApplyNeumann(p, ap)
		pap := s.pool.Dot(p, ap)
		if pap <= 0 {
			break // numerical null-space contamination
		}
		alpha := rz / pap
		s.pool.RunMin(n, minAxpy, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x[i] += alpha * p[i]
				r[i] -= alpha * ap[i]
			}
		})
		s.pool.RunMin(n, minAxpy, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				z[i] = r[i] / diag[i]
			}
		})
		rzNew := s.pool.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		s.pool.RunMin(n, minAxpy, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				p[i] = z[i] + beta*p[i]
			}
		})
	}
	// Pin the solution: remove the volume-weighted mean.
	xm := s.pool.Sum(n, func(i int) float64 {
		e := s.codes[i].Extent()
		return x[i] * e * e * e
	}) / volSum
	s.pool.RunMin(n, minAxpy, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] -= xm
		}
	})
	res.Converged = res.Converged || res.Residual <= opt.Tol
	return res, nil
}

// ProjectedDivergence computes the divergence of the face-corrected
// velocity field: face-normal velocities avg(u_i, u_j) minus the pressure
// flux dt (p_j - p_i)/d on interior faces (walls stay impermeable). With
// p from SolveNeumann(-div/dt) this is zero to solver tolerance — the
// exact discrete projection.
func (s *System) ProjectedDivergence(u, v, w, p []float64, dt float64, out []float64) {
	if s.ref {
		s.projectedDivergenceRef(u, v, w, p, dt, out)
		return
	}
	comp := [3][]float64{u, v, w}
	rs, nb := s.rowStart, s.nb
	s.pool.RunMin(len(s.codes), minStencil, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			acc := 0.0
			for k := rs[i]; k < rs[i+1]; k++ {
				j := nb[k]
				if j < 0 {
					continue
				}
				axis, sign := axisOf(int(s.fdir[k]))
				uf := 0.5 * (comp[axis][i] + comp[axis][j])
				// Outward-normal correction: u_out -= dt (p_j - p_i)/d,
				// i.e. flux -= dt * T * (p_j - p_i).
				acc += sign*s.farea[k]*uf - dt*s.tr[k]*(p[j]-p[i])
			}
			out[i] = acc / s.vol[i]
		}
	})
}

// CellAt returns the index of the cell containing the point (x, y, z) in
// the unit cube, or false when the point is outside. The lookup is one
// binary search over the sorted left-aligned key index (the internal/serve
// leaf-lookup idiom) instead of up to MaxLevel map probes — the dominant
// cost of semi-Lagrangian advection before the flattening.
func (s *System) CellAt(x, y, z float64) (int, bool) {
	if x < 0 || x >= 1 || y < 0 || y >= 1 || z < 0 || z >= 1 {
		return 0, false
	}
	grid := float64(uint64(1) << morton.MaxLevel)
	code := morton.Encode(uint32(x*grid), uint32(y*grid), uint32(z*grid), morton.MaxLevel)
	k := code.Key()
	i := sort.Search(len(s.keys), func(j int) bool { return s.keys[j] > k }) - 1
	if i < 0 {
		return 0, false
	}
	cand := int(s.perm[i])
	lo, hi := s.codes[cand].KeySpan()
	if k >= lo && k < hi {
		return cand, true
	}
	return 0, false
}

// Extent returns cell i's edge length.
func (s *System) Extent(i int) float64 { return s.codes[i].Extent() }

// Center returns cell i's center.
func (s *System) Center(i int) (float64, float64, float64) { return s.codes[i].Center() }
