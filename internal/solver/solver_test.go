package solver

import (
	"math"
	"math/rand"
	"testing"

	"pmoctree/internal/core"
	"pmoctree/internal/morton"
	"pmoctree/internal/octree"
)

// uniformLeaves returns the codes of a uniform level-l tiling.
func uniformLeaves(l uint8) []morton.Code {
	tr := octree.New()
	tr.RefineWhere(func(morton.Code) bool { return true }, l)
	return tr.LeafCodes()
}

// adaptiveLeaves returns a balanced adaptive tiling refined around a
// sphere surface.
func adaptiveLeaves(maxLevel uint8) []morton.Code {
	tr := octree.New()
	tr.RefineWhere(func(c morton.Code) bool {
		x, y, z := c.Center()
		h := c.Extent()
		d := math.Sqrt((x-0.5)*(x-0.5) + (y-0.5)*(y-0.5) + (z-0.5)*(z-0.5))
		return math.Abs(d-0.3) < h
	}, maxLevel)
	tr.Balance()
	return tr.LeafCodes()
}

func TestBuildUniform(t *testing.T) {
	s, err := Build(uniformLeaves(2))
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 64 {
		t.Fatalf("N = %d", s.N())
	}
	// Every cell has exactly 6 faces on a uniform grid.
	for i := range s.faces {
		if len(s.faces[i]) != 6 {
			t.Fatalf("cell %d has %d faces", i, len(s.faces[i]))
		}
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Build([]morton.Code{morton.Root, morton.Root}); err == nil {
		t.Error("duplicate cells accepted")
	}
	// A non-tiling (missing octant).
	leaves := uniformLeaves(1)
	if _, err := Build(leaves[:7]); err == nil {
		t.Error("incomplete tiling accepted")
	}
	// An unbalanced mesh: level-1 cell adjacent to level-3 cells.
	tr := octree.New()
	n := tr.Refine(tr.Root)[0]
	n2 := tr.Refine(n)[7]
	tr.Refine(n2)
	if tr.IsBalanced() {
		t.Skip("configuration unexpectedly balanced")
	}
	if _, err := Build(tr.LeafCodes()); err == nil {
		t.Error("unbalanced mesh accepted")
	}
}

func TestOperatorSymmetricPositiveDefinite(t *testing.T) {
	for _, leaves := range [][]morton.Code{uniformLeaves(2), adaptiveLeaves(4)} {
		s, err := Build(leaves)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(7))
		n := s.N()
		x := make([]float64, n)
		y := make([]float64, n)
		ax := make([]float64, n)
		ay := make([]float64, n)
		for trial := 0; trial < 5; trial++ {
			for i := range x {
				x[i] = r.NormFloat64()
				y[i] = r.NormFloat64()
			}
			s.Apply(x, ax)
			s.Apply(y, ay)
			// Symmetry: <Ax, y> == <x, Ay>.
			lhs, rhs := dot(ax, y), dot(x, ay)
			if math.Abs(lhs-rhs) > 1e-9*math.Max(math.Abs(lhs), 1) {
				t.Fatalf("operator not symmetric: %v vs %v (n=%d)", lhs, rhs, n)
			}
			// Positive definiteness: <Ax, x> > 0 for x != 0.
			if q := dot(ax, x); q <= 0 {
				t.Fatalf("operator not positive definite: %v", q)
			}
		}
	}
}

// manufactured solution p = sin(pi x) sin(pi y) sin(pi z), zero on the
// boundary; f = -lap p = 3 pi^2 p.
func manufactured(x, y, z float64) float64 {
	return math.Sin(math.Pi*x) * math.Sin(math.Pi*y) * math.Sin(math.Pi*z)
}

func solveManufactured(t *testing.T, leaves []morton.Code) (l2, h float64) {
	t.Helper()
	s, err := Build(leaves)
	if err != nil {
		t.Fatal(err)
	}
	n := s.N()
	b := make([]float64, n)
	x := make([]float64, n)
	minH := 1.0
	for i, c := range s.codes {
		cx, cy, cz := c.Center()
		b[i] = 3 * math.Pi * math.Pi * manufactured(cx, cy, cz)
		if e := c.Extent(); e < minH {
			minH = e
		}
	}
	res, err := s.Solve(b, x, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	num, den := 0.0, 0.0
	for i, c := range s.codes {
		cx, cy, cz := c.Center()
		e := c.Extent()
		v := e * e * e
		d := x[i] - manufactured(cx, cy, cz)
		num += d * d * v
		den += manufactured(cx, cy, cz) * manufactured(cx, cy, cz) * v
	}
	return math.Sqrt(num / den), minH
}

func TestPoissonConvergesWithRefinement(t *testing.T) {
	e3, _ := solveManufactured(t, uniformLeaves(3))
	e4, _ := solveManufactured(t, uniformLeaves(4))
	if e3 > 0.1 {
		t.Errorf("level-3 relative L2 error %v too large", e3)
	}
	// Second-order scheme: halving h should cut the error ~4x; accept 3x.
	if e4 > e3/3 {
		t.Errorf("no second-order convergence: %v -> %v", e3, e4)
	}
}

func TestPoissonOnAdaptiveMesh(t *testing.T) {
	err2, _ := solveManufactured(t, adaptiveLeaves(4))
	if err2 > 0.15 {
		t.Errorf("adaptive-mesh relative L2 error %v", err2)
	}
}

func TestSolveFromPMOctree(t *testing.T) {
	// End to end: mesh with PM-octree, solve, write the pressure back.
	tree := core.Create(core.Config{})
	tree.RefineWhere(func(c morton.Code) bool { return c.Level() < 3 }, 3)
	tree.Balance()
	s, err := Build(tree.LeafCodes())
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, s.N())
	x := make([]float64, s.N())
	for i, c := range s.Codes() {
		cx, cy, cz := c.Center()
		b[i] = 3 * math.Pi * math.Pi * manufactured(cx, cy, cz)
	}
	if _, err := s.Solve(b, x, Options{}); err != nil {
		t.Fatal(err)
	}
	// Store the solution into the octree fields.
	byCode := map[morton.Code]float64{}
	for i, c := range s.Codes() {
		byCode[c] = x[i]
	}
	n := tree.UpdateLeaves(func(c morton.Code, d *[core.DataWords]float64) bool {
		d[1] = byCode[c]
		return true
	})
	if n == 0 {
		t.Error("no pressures written back")
	}
	tree.Persist()
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveZeroRHS(t *testing.T) {
	s, err := Build(uniformLeaves(2))
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, s.N())
	x := make([]float64, s.N())
	x[3] = 5 // non-zero start must be driven to the zero solution
	res, err := s.Solve(b, x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("zero RHS did not converge")
	}
	for i, v := range x {
		if math.Abs(v) > 1e-6 {
			t.Fatalf("x[%d] = %v, want 0", i, v)
		}
	}
}

func TestSolveVectorLengthChecked(t *testing.T) {
	s, _ := Build(uniformLeaves(1))
	if _, err := s.Solve(make([]float64, 3), make([]float64, s.N()), Options{}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMaxIterBound(t *testing.T) {
	s, _ := Build(uniformLeaves(3))
	b := make([]float64, s.N())
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, s.N())
	res, err := s.Solve(b, x, Options{Tol: 1e-14, MaxIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("converged in 2 iterations to 1e-14; suspicious")
	}
	if res.Iterations != 2 {
		t.Errorf("iterations = %d", res.Iterations)
	}
}
