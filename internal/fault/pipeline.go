package fault

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"

	"pmoctree/internal/core"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/sim"
	"pmoctree/internal/telemetry"
)

// PipelineChaosConfig parameterizes a chaos soak of the asynchronous
// persistence pipeline: the droplet workload steps with commits riding
// the background persist worker, and power is cut at every pipeline
// stage — before any writeback write lands, mid-writeback (including
// inside a group batch), after the fallback-ring push with the commit
// record not yet flipped, after the flip, and at mutator-chosen write
// counts that land anywhere in a step.
type PipelineChaosConfig struct {
	Seed          int64
	Steps         int   // droplet steps to attempt (default 60)
	MaxLevel      uint8 // refinement bound (default 4)
	DRAMBudget    int   // C0 budget in octants (default 4096)
	PipelineDepth int   // in-flight commit window (default 3)
	GroupCommit   int   // batch width (default 2)
	// Recorder, when non-nil, receives commit_attempt/crash/restore flight
	// events; every restore event must name a version some commit_attempt
	// published (the same black-box contract as the synchronous soak).
	Recorder *telemetry.FlightRecorder
}

func (c PipelineChaosConfig) withDefaults() PipelineChaosConfig {
	if c.Steps <= 0 {
		c.Steps = 60
	}
	if c.MaxLevel == 0 {
		c.MaxLevel = 4
	}
	if c.DRAMBudget <= 0 {
		c.DRAMBudget = 4096
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 3
	}
	if c.GroupCommit <= 0 {
		c.GroupCommit = 2
	}
	return c
}

// PipelineChaosReport is the outcome of a pipelined soak. Unlike the
// synchronous ChaosReport it is NOT bit-reproducible per seed: the cut
// races the worker thread, so which stage a given crash lands in — and
// therefore which version recovery picks and how the workload evolves
// afterwards — varies run to run. The report carries counters; the
// correctness contract is the invariant the run enforces, not the exact
// numbers.
type PipelineChaosReport struct {
	Seed      int64
	Steps     int
	Committed int // steps whose Persist returned without crashing

	CutsArmed        int
	Crashes          int // power-loss crashes taken
	StageCuts        map[string]int
	Restores         int
	Fallbacks        int
	ValidateFailures int

	Stalls    uint64 // mutator stalls on a full pipeline window
	Coalesced uint64 // versions that shared a group commit

	FinalStep   uint64
	FinalLeaves int
}

// String renders a diffable summary.
func (r PipelineChaosReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline-chaos seed=%d steps=%d committed=%d\n", r.Seed, r.Steps, r.Committed)
	fmt.Fprintf(&b, "  cuts: armed=%d fired=%d (writeback=%d ring=%d commit=%d mutator=%d)\n",
		r.CutsArmed, r.Crashes, r.StageCuts["writeback"], r.StageCuts["ring"], r.StageCuts["commit"], r.StageCuts["mutator"])
	fmt.Fprintf(&b, "  recovery: restores=%d fallbacks=%d validate_failures=%d\n",
		r.Restores, r.Fallbacks, r.ValidateFailures)
	fmt.Fprintf(&b, "  pipeline: stalls=%d coalesced=%d\n", r.Stalls, r.Coalesced)
	fmt.Fprintf(&b, "  final: step=%d leaves=%d\n", r.FinalStep, r.FinalLeaves)
	return b.String()
}

// pipelineStages is the cut rotation: the three worker stages plus a
// mutator-side write-count cut that can land anywhere in a step
// (evictions, staging, GC bitmap writes) — including with the delta
// snapshotted but nothing written back.
var pipelineStages = []string{"writeback", "ring", "commit", "mutator"}

// RunPipeline executes the pipelined chaos soak. The invariant it
// enforces is the same one the synchronous soak pins, extended to group
// commit: whatever stage power is lost in, recovery lands on a version
// whose digest some enqueued version published — never a torn hybrid,
// never a state that was only partially written back, and never a group
// batch's intermediate member with the record already naming the batch.
// An error means that guarantee was violated.
func RunPipeline(cfg PipelineChaosConfig) (PipelineChaosReport, error) {
	cfg = cfg.withDefaults()
	rep := PipelineChaosReport{Seed: cfg.Seed, Steps: cfg.Steps, StageCuts: map[string]int{}}
	rng := rand.New(rand.NewSource(cfg.Seed))

	nv := nvbm.New(nvbm.NVBM, 0)
	mkConfig := func() core.Config {
		return core.Config{
			NVBMDevice:        nv,
			DRAMDevice:        nvbm.New(nvbm.DRAM, 0),
			DRAMBudgetOctants: cfg.DRAMBudget,
			Seed:              cfg.Seed,
			RetainVersions:    0, // leave the whole ring to the pipeline window
			VerifyRestore:     true,
			PipelineDepth:     cfg.PipelineDepth,
			GroupCommit:       cfg.GroupCommit,
		}
	}

	// The armed stage is read by the persist worker's hook and written by
	// the mutator between steps; atomics keep the handoff clean.
	var armStage atomic.Value // string: stage to cut at, "" disarmed
	var armBudget atomic.Int64
	armStage.Store("")
	hook := func(stage string) {
		if s, _ := armStage.Load().(string); s == stage {
			armStage.Store("")
			nv.CutPowerAfter(int(armBudget.Load()))
		}
	}

	tree := core.Create(mkConfig())
	tree.SetPersistHook(hook)
	d := sim.NewDroplet(sim.DropletConfig{Steps: cfg.Steps + 2})
	tree.SetFeatures(d.Feature(1))

	// Every version handed to the pipeline is a legitimate recovery
	// target: it becomes durable if its (group's) record flips before the
	// cut. Digests are recorded BEFORE Persist — relocation never changes
	// codes or data, and the cut can land inside Persist after the
	// enqueue.
	history := map[uint64]bool{commitDigest(tree): true}
	cfg.Recorder.Record(telemetry.FlightEvent{Kind: "commit", Step: tree.CommittedStep(), Value: commitDigest(tree)})

	recoverTree := func(s int, stage string) error {
		rep.StageCuts[stage]++
		cfg.Recorder.Record(telemetry.FlightEvent{Kind: "crash", Step: uint64(s), Detail: "stage=" + stage})
		// The worker may have died with the mutator or still be parked;
		// either way the queue is lost power — drop it without flushing.
		tree.AbortPipeline()
		armStage.Store("")
		nv.RestorePower()
		t, rrep, err := core.RestoreWithReport(mkConfig())
		if err != nil {
			return fmt.Errorf("step %d (%s cut): unrecoverable: %w", s, stage, err)
		}
		rep.Restores++
		if rrep.Fallbacks > 0 {
			rep.Fallbacks++
		}
		dg := commitDigest(t)
		cfg.Recorder.Record(telemetry.FlightEvent{Kind: "restore", Step: t.CommittedStep(), Value: dg,
			Detail: fmt.Sprintf("fallbacks=%d", rrep.Fallbacks)})
		if !history[dg] {
			return fmt.Errorf("step %d (%s cut): restored version (step %d) was never handed to the pipeline", s, stage, rrep.ChosenStep)
		}
		tree = t
		tree.SetPersistHook(hook)
		tree.SetFeatures(d.Feature(s + 1))
		return nil
	}

	for s := 1; s <= cfg.Steps; s++ {
		// Arm a cut on a rotating schedule: roughly every other step,
		// cycling through the worker stages and the mutator-side counter.
		stage := ""
		if rng.Intn(2) == 0 {
			stage = pipelineStages[rng.Intn(len(pipelineStages))]
			rep.CutsArmed++
			if stage == "mutator" {
				nv.CutPowerAfterTorn(rng.Intn(200), cfg.Seed+int64(s))
			} else {
				armBudget.Store(int64(rng.Intn(8)))
				armStage.Store(stage)
			}
		}
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r == nvbm.ErrPowerLost {
						rep.Crashes++
					} else {
						rep.ValidateFailures++
					}
					crashed = true
				}
			}()
			sim.Step(tree, d, s, cfg.MaxLevel)
			tree.SetFeatures(d.Feature(s + 1))
			pending := workingDigest(tree)
			history[pending] = true
			cfg.Recorder.Record(telemetry.FlightEvent{Kind: "commit_attempt", Step: tree.Step(), Value: pending})
			tree.Persist()
			// Periodically drain the window so late-armed worker cuts fire
			// within the step that armed them (and Flush's failure
			// surfacing is exercised, not just Persist's).
			if s%5 == 0 {
				tree.Flush()
			}
		}()
		if crashed {
			if stage == "" {
				// A cut armed in an earlier step fired late, or validation
				// tripped; attribute to the mutator bucket.
				stage = "mutator"
			}
			if err := recoverTree(s, stage); err != nil {
				finalizePipeline(&rep, tree)
				return rep, err
			}
			continue
		}
		armStage.Store("")
		nv.RestorePower() // disarm an unspent countdown
		rep.Committed++
		if err := safeValidate(tree); err != nil {
			rep.ValidateFailures++
			if rerr := recoverTree(s, "validate"); rerr != nil {
				finalizePipeline(&rep, tree)
				return rep, rerr
			}
		}
	}

	// Final barrier: everything enqueued becomes durable, and the device
	// restores to the exact committed state.
	flushErr := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("final flush crashed: %v", r)
			}
		}()
		tree.Flush()
		return nil
	}()
	finalizePipeline(&rep, tree)
	if flushErr != nil {
		return rep, flushErr
	}
	finalDigest := commitDigest(tree)
	if !history[finalDigest] {
		return rep, fmt.Errorf("final committed state was never handed to the pipeline")
	}
	restored, _, err := core.RestoreWithReport(mkConfig())
	if err != nil {
		return rep, fmt.Errorf("final restore: %w", err)
	}
	if got := commitDigest(restored); got != finalDigest {
		return rep, fmt.Errorf("final restore diverged from the flushed state: %016x != %016x", got, finalDigest)
	}
	return rep, nil
}

func finalizePipeline(rep *PipelineChaosReport, tree *core.Tree) {
	st := tree.PipelineStats()
	rep.Stalls += st.Stalls
	rep.Coalesced += st.Coalesced
	rep.FinalStep = tree.CommittedStep()
	rep.FinalLeaves = tree.LeafCount()
}
