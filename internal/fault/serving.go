package fault

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"pmoctree/internal/core"
	"pmoctree/internal/serve"
)

// QueryStats is the query-side outcome of a chaos run with QueryReaders
// enabled. Counts are totals across all reader goroutines.
type QueryStats struct {
	Readers     int
	Batches     uint64 // reader batches attempted (acquire + double query pass)
	Served      uint64 // individual queries that completed
	Aborted     uint64 // batches killed by a fault (power cut mid-read, etc.)
	Mismatches  uint64 // double-pass divergences on one immutable snapshot
	Generations uint64 // catalog swaps after writer crash recovery
}

// chaosServing runs MVCC snapshot readers against the chaos writer. The
// readers hammer a serve.Catalog of pinned committed versions while the
// writer steps, crashes, and recovers; each batch acquires a snapshot and
// runs the fixed query set twice, requiring bit-identical results — a
// pinned version must be immutable no matter what the writer is doing.
//
// Fault injection that mutates device bytes in place (bit-rot, scrub
// repair/remap) and the recovery swap are excluded from reader batches
// via mu: readers hold it shared per batch, the writer exclusively per
// fault window. Everything else — commits, GC, replica sync — runs truly
// concurrently with the readers. A nil *chaosServing disables serving;
// every method is nil-safe.
type chaosServing struct {
	readers int

	// mu: reader batches (RLock) vs. in-place fault windows and catalog
	// swaps (Lock).
	mu  sync.RWMutex
	cat *serve.Catalog

	stopCh chan struct{}
	wg     sync.WaitGroup
	once   sync.Once

	batches     atomic.Uint64
	served      atomic.Uint64
	aborted     atomic.Uint64
	mismatches  atomic.Uint64
	generations atomic.Uint64
}

// chaosQuery is one fixed probe; the set is identical for every batch so
// double passes are comparable.
type chaosQuery struct {
	kind  string
	pt    [3]float64
	box   serve.Box
	field int
}

var chaosQueries = []chaosQuery{
	{kind: "point", pt: [3]float64{0.5, 0.5, 0.55}},
	{kind: "point", pt: [3]float64{0.52, 0.48, 0.7}},
	{kind: "point", pt: [3]float64{0.1, 0.9, 0.2}},
	{kind: "point", pt: [3]float64{0.85, 0.15, 0.4}},
	{kind: "region", box: serve.Box{Min: [3]float64{0.4, 0.4, 0.4}, Max: [3]float64{0.6, 0.6, 0.75}}},
	{kind: "region", box: serve.Box{Min: [3]float64{0, 0, 0.8}, Max: [3]float64{1, 1, 1}}},
	{kind: "region", box: serve.Box{Min: [3]float64{0.45, 0.45, 0.1}, Max: [3]float64{0.55, 0.55, 0.9}}},
	{kind: "agg", field: 0, box: serve.Box{Min: [3]float64{0, 0, 0}, Max: [3]float64{1, 1, 1}}},
	{kind: "agg", field: 1, box: serve.Box{Min: [3]float64{0.3, 0.3, 0.3}, Max: [3]float64{0.7, 0.7, 0.7}}},
}

// startChaosServing builds the catalog over the writer's tree, publishes
// the initial committed version, and starts the readers. Returns nil when
// readers is zero.
func startChaosServing(readers int, tree *core.Tree) *chaosServing {
	if readers <= 0 {
		return nil
	}
	cs := &chaosServing{readers: readers, stopCh: make(chan struct{})}
	cs.cat = serve.NewCatalog(tree, serve.Config{Keep: 3})
	if s, err := cs.cat.Publish(); err == nil {
		s.Close()
	}
	cs.wg.Add(readers)
	for i := 0; i < readers; i++ {
		go cs.reader(i)
	}
	return cs
}

func (cs *chaosServing) reader(id int) {
	defer cs.wg.Done()
	pick := id
	for {
		select {
		case <-cs.stopCh:
			return
		default:
		}
		if !cs.batch(&pick) {
			// Nothing acquirable or a fault aborted the batch; back off so
			// a powered-down device isn't spun on.
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// batch acquires one pinned version and runs the query set twice,
// requiring bit-identical results. Reports whether the batch completed.
func (cs *chaosServing) batch(pick *int) (ok bool) {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	defer func() {
		if r := recover(); r != nil {
			// A fault (ErrPowerLost mid-read, a torn structure) killed the
			// batch: legitimate under chaos, counted, never fatal.
			cs.aborted.Add(1)
			ok = false
		}
	}()
	cs.batches.Add(1)
	steps := cs.cat.Steps()
	if len(steps) == 0 {
		return false
	}
	snap, err := cs.cat.Acquire(steps[*pick%len(steps)])
	*pick++
	if err != nil {
		return false // evicted under us, or catalog retired for recovery
	}
	defer snap.Close()
	a := runChaosQueries(snap)
	b := runChaosQueries(snap)
	if !bytes.Equal(a, b) {
		cs.mismatches.Add(1)
		return false
	}
	cs.served.Add(uint64(2 * len(chaosQueries)))
	return true
}

// runChaosQueries executes the fixed set against one snapshot and encodes
// every result (or error string) as one JSON blob.
func runChaosQueries(snap *serve.Snapshot) []byte {
	results := make([]any, 0, len(chaosQueries))
	for _, q := range chaosQueries {
		var (
			res any
			err error
		)
		switch q.kind {
		case "point":
			res, err = snap.Point(q.pt[0], q.pt[1], q.pt[2])
		case "region":
			res, err = snap.Region(q.box)
		default:
			res, err = snap.Aggregate(q.field, q.box)
		}
		if err != nil {
			results = append(results, err.Error())
		} else {
			results = append(results, res)
		}
	}
	out, err := json.Marshal(results)
	if err != nil {
		panic(err)
	}
	return out
}

// lockFaults excludes reader batches while the caller mutates device
// bytes in place or swaps the serving catalog.
func (cs *chaosServing) lockFaults() {
	if cs != nil {
		cs.mu.Lock()
	}
}

func (cs *chaosServing) unlockFaults() {
	if cs != nil {
		cs.mu.Unlock()
	}
}

// retire closes the current catalog, draining every pin (no reader batch
// is in flight: callers hold the fault lock). Writer thread only.
func (cs *chaosServing) retire() {
	if cs != nil {
		cs.cat.Close()
	}
}

// rebind builds a fresh catalog over the recovered tree and publishes its
// committed version. Callers hold the fault lock. Writer thread only.
func (cs *chaosServing) rebind(tree *core.Tree) {
	if cs == nil {
		return
	}
	cs.cat = serve.NewCatalog(tree, serve.Config{Keep: 3})
	if s, err := cs.cat.Publish(); err == nil {
		s.Close()
	}
	cs.generations.Add(1)
}

// publish pins the newest committed version. Writer thread only.
func (cs *chaosServing) publish() {
	if cs == nil {
		return
	}
	if s, err := cs.cat.Publish(); err == nil {
		s.Close()
	}
}

// stop halts the readers, retires the catalog, and fills out (both may be
// nil). Idempotent.
func (cs *chaosServing) stop(out *QueryStats) {
	if cs == nil {
		return
	}
	cs.once.Do(func() {
		close(cs.stopCh)
		cs.wg.Wait()
		cs.cat.Close()
	})
	if out != nil {
		*out = QueryStats{
			Readers:     cs.readers,
			Batches:     cs.batches.Load(),
			Served:      cs.served.Load(),
			Aborted:     cs.aborted.Load(),
			Mismatches:  cs.mismatches.Load(),
			Generations: cs.generations.Load(),
		}
	}
}

// mismatchCount reports double-pass divergences so Run can fail the soak.
func (cs *chaosServing) mismatchCount() uint64 {
	if cs == nil {
		return 0
	}
	return cs.mismatches.Load()
}
