package fault

import "testing"

// TestChaosSoak is the acceptance gate for the self-healing persistence
// stack: over several seeds, the droplet workload runs under torn power
// cuts, bit-rot, wear-out, and lossy replica shipping, and every crash
// must recover to a validated, previously committed version. CI runs it
// with `go test -run Chaos -count=1`.
func TestChaosSoak(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	var crashes, fallbacks, corrupt int
	for _, seed := range seeds {
		rep, err := Run(ChaosConfig{Seed: seed, Steps: 40})
		if err != nil {
			t.Fatalf("seed %d: recovery guarantee violated: %v\n%s", seed, err, rep)
		}
		t.Logf("seed %d:\n%s", seed, rep)
		// Every recovery attempt (crash or failed validation) succeeded.
		if got, want := rep.Restores, rep.Crashes+rep.ValidateFailures; got != want {
			t.Errorf("seed %d: restores=%d, want crashes+validate_failures=%d", seed, got, want)
		}
		// Scrub healed every corrupt line it found; nothing was beyond
		// repair while a commit-fresh replica was available.
		if rep.ScrubRepaired != rep.ScrubCorrupt {
			t.Errorf("seed %d: scrub repaired %d of %d corrupt lines", seed, rep.ScrubRepaired, rep.ScrubCorrupt)
		}
		if rep.ScrubUnrepairable != 0 {
			t.Errorf("seed %d: %d unrepairable lines", seed, rep.ScrubUnrepairable)
		}
		if rep.Committed == 0 {
			t.Errorf("seed %d: no step ever committed", seed)
		}
		crashes += rep.Crashes
		fallbacks += rep.Fallbacks
		corrupt += rep.ScrubCorrupt
	}
	// The soak is only meaningful if the fault paths actually fired.
	if crashes == 0 {
		t.Error("no torn power cut fired across any seed; harness is not exercising crashes")
	}
	if fallbacks == 0 {
		t.Error("no restore ever fell back past the newest version; fallback chain untested")
	}
	if corrupt == 0 {
		t.Error("scrub never found an injected media error")
	}
}

// TestChaosHarsh turns the fault intensities up (every step rots a burst
// of bits, the link drops 40% of frames) and still requires every crash
// to land on a committed version — degraded replicas and sync failures
// are allowed, silent corruption is not.
func TestChaosHarsh(t *testing.T) {
	p := DefaultProfile()
	p.CutProb = 0.4
	p.RotProb = 1.0
	p.RotBurst = 48
	p.DropProb = 0.4
	p.CorruptProb = 0.2
	for _, seed := range []int64{11, 12, 13} {
		rep, err := Run(ChaosConfig{Seed: seed, Steps: 30, Profile: p})
		if err != nil {
			t.Fatalf("seed %d: recovery guarantee violated: %v\n%s", seed, err, rep)
		}
		t.Logf("seed %d:\n%s", seed, rep)
		if rep.ScrubUnrepairable != 0 {
			t.Errorf("seed %d: %d unrepairable lines despite replica repair source", seed, rep.ScrubUnrepairable)
		}
	}
}

// TestChaosQueryReaders runs the soak with concurrent MVCC snapshot
// readers (internal/serve) hammering pinned committed versions while the
// writer crashes and recovers. The digest-history recovery assertion must
// still hold, every double pass over a pinned snapshot must be
// bit-identical, and a useful number of queries must actually have been
// served through the chaos. Reports are not compared across runs here:
// reader timing legitimately perturbs pin lifetimes and hence arena
// layout (TestChaosReproducible covers the readers-off contract).
func TestChaosQueryReaders(t *testing.T) {
	seeds := []int64{3, 7}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		var qs QueryStats
		rep, err := Run(ChaosConfig{Seed: seed, Steps: 40, QueryReaders: 3, QueryStats: &qs})
		if err != nil {
			t.Fatalf("seed %d: recovery guarantee violated under query load: %v\n%s", seed, err, rep)
		}
		t.Logf("seed %d:\n%s  queries: %+v", seed, rep, qs)
		if got, want := rep.Restores, rep.Crashes+rep.ValidateFailures; got != want {
			t.Errorf("seed %d: restores=%d, want crashes+validate_failures=%d", seed, got, want)
		}
		if rep.Committed == 0 {
			t.Errorf("seed %d: no step ever committed", seed)
		}
		if qs.Mismatches != 0 {
			t.Errorf("seed %d: %d snapshot double-pass mismatches", seed, qs.Mismatches)
		}
		if qs.Served == 0 {
			t.Errorf("seed %d: readers never served a query", seed)
		}
		if qs.Generations == 0 && rep.Crashes+rep.ValidateFailures > 0 {
			t.Errorf("seed %d: writer recovered %d times but the catalog never rebound",
				seed, rep.Crashes+rep.ValidateFailures)
		}
	}
}

// TestChaosReproducible pins the bit-reproducibility contract: two runs
// with the same config produce identical reports, digest included.
func TestChaosReproducible(t *testing.T) {
	cfg := ChaosConfig{Seed: 42, Steps: 25}
	a, errA := Run(cfg)
	b, errB := Run(cfg)
	if errA != nil || errB != nil {
		t.Fatalf("runs failed: %v / %v", errA, errB)
	}
	if a != b {
		t.Fatalf("same seed produced different reports:\n--- first\n%s--- second\n%s", a, b)
	}
	if a.Digest == 0 {
		t.Error("history digest is zero; commit history was never hashed")
	}
}

// TestChaosSoakCachedReads re-runs the soak with the decoded-octant
// cache allowed to elide committed-read device traffic
// (CacheCommittedReads). Crash recovery, scrubbing, and validation all
// re-read the arena underneath the cache, so surviving the same seeds
// proves the cache never serves a stale decode across power cuts,
// restores, GC sweeps, and compaction-free recycling. The workload
// evolution must match the uncached soak exactly (same committed steps,
// same digests): the cache is invisible to simulation state.
func TestChaosSoakCachedReads(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		cached, err := Run(ChaosConfig{Seed: seed, Steps: 40, CacheCommittedReads: true})
		if err != nil {
			t.Fatalf("seed %d (cached): recovery guarantee violated: %v\n%s", seed, err, cached)
		}
		plain, err := Run(ChaosConfig{Seed: seed, Steps: 40})
		if err != nil {
			t.Fatalf("seed %d (uncached): %v", seed, err)
		}
		if cached != plain {
			t.Errorf("seed %d: cached soak diverged from uncached:\ncached:  %s\nplain:   %s",
				seed, cached, plain)
		}
	}
}
