package fault

import (
	"testing"

	"pmoctree/internal/core"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/sim"
)

// TestConstructChaosSoak: bulk construction is crash-safe. A torn power
// cut placed anywhere inside the construct + persist write traffic must
// leave restorable content equal to a committed version — the freshly
// created root (the constructed commit never landed) or the constructed
// step-1 mesh — never a torn hybrid; and the survivor must validate and
// continue stepping to the incremental run's exact committed digests.
// (As in the main soak, content is the contract: a cut tearing the root
// store itself can leave the step counter ahead of the content it points
// to, which recovery resolves in the content's favor.)
func TestConstructChaosSoak(t *testing.T) {
	const maxLevel = 4
	const lastStep = 4
	d := sim.NewDroplet(sim.DropletConfig{Steps: lastStep + 8})

	// Reference digests from the incremental path, keyed by workload step
	// (0 = the created root). Digests hash codes and data only, so the
	// reference can live on the default device.
	refDigest := map[int]uint64{}
	ref := core.Create(core.Config{})
	refDigest[0] = commitDigest(ref)
	for s := 1; s <= lastStep; s++ {
		sim.Step(ref, d, s, maxLevel)
		ref.Persist()
		refDigest[s] = commitDigest(ref)
	}
	contentStep := func(dg uint64) int {
		for s, want := range refDigest {
			if dg == want {
				return s
			}
		}
		return -1
	}

	// Write countdowns spanning the whole construct + persist traffic.
	// Construction coalesces the arena fill into a handful of span writes,
	// so the interesting countdowns are small: early cuts land in the bulk
	// span write, later ones inside Persist's root store, GC, and
	// retarget; the largest never fire.
	cuts := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 24, 100000}
	crashes, survived := 0, 0
	for _, cut := range cuts {
		nv := nvbm.New(nvbm.NVBM, 0)
		cfg := core.Config{NVBMDevice: nv, VerifyRestore: true}
		tree := core.Create(cfg)
		nv.CutPowerAfterTorn(cut, int64(cut)*7919+3)
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != nvbm.ErrPowerLost {
						t.Fatalf("cut %d: non-power panic: %v", cut, r)
					}
					crashed = true
				}
			}()
			if _, ok := sim.ConstructInitial(tree, d, 1, maxLevel, nil); !ok {
				t.Fatal("ConstructInitial declined a fresh PM-octree")
			}
			tree.Persist()
		}()
		nv.RestorePower()
		content := 1
		if crashed {
			crashes++
			rt, err := core.Restore(cfg)
			if err != nil {
				t.Fatalf("cut %d: unrecoverable after torn cut: %v", cut, err)
			}
			content = contentStep(commitDigest(rt))
			if content != 0 && content != 1 {
				t.Fatalf("cut %d: restored content (digest %016x) matches no committed version",
					cut, commitDigest(rt))
			}
			tree = rt
		} else {
			survived++
			if commitDigest(tree) != refDigest[1] {
				t.Fatalf("cut %d: constructed commit diverged from the incremental step 1", cut)
			}
		}
		// Converge back to the reference: redo step 1 by construction if
		// the cut erased it, then step incrementally; every commit's
		// content must hit the incremental digest for its workload step.
		for s := content + 1; s <= lastStep; s++ {
			if s == 1 {
				if _, ok := sim.ConstructInitial(tree, d, 1, maxLevel, nil); !ok {
					t.Fatalf("cut %d: ConstructInitial declined the restored fresh tree", cut)
				}
			} else {
				sim.Step(tree, d, s, maxLevel)
			}
			tree.Persist()
			if dg := commitDigest(tree); dg != refDigest[s] {
				t.Fatalf("cut %d: step %d diverged after recovery (digest %016x)", cut, s, dg)
			}
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("cut %d: final validate: %v", cut, err)
		}
	}
	// The sweep must actually exercise both outcomes, or the countdown
	// list has drifted away from the construct traffic.
	if crashes == 0 || survived == 0 {
		t.Fatalf("degenerate cut sweep: %d crashes, %d clean runs", crashes, survived)
	}
	t.Logf("construct torn-cut sweep: %d crashes recovered, %d clean runs", crashes, survived)
}
