package fault

import (
	"testing"

	"pmoctree/internal/core"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/sim"
	"pmoctree/internal/telemetry"
)

// TestPipelineChaosSoak runs the pipelined soak across seeds until every
// pipeline stage has taken at least one power cut — delta handed off but
// nothing written back, mid-writeback, ring pushed with the record not
// flipped, after the flip, and mutator-side cuts landing anywhere in a
// step — and checks the recovery invariant plus the flight-recorder
// contract: every restore event names a digest some commit or
// commit-attempt event published first.
func TestPipelineChaosSoak(t *testing.T) {
	stageFired := map[string]int{}
	legit := map[uint64]bool{}
	var restores, crashes int
	for seed := int64(1); seed <= 4; seed++ {
		fr := telemetry.NewFlightRecorder(8192)
		rep, err := RunPipeline(PipelineChaosConfig{Seed: seed, Steps: 60, Recorder: fr})
		if err != nil {
			t.Fatalf("seed %d: recovery guarantee violated: %v\n%s", seed, err, rep)
		}
		crashes += rep.Crashes
		restores += rep.Restores
		for stage, n := range rep.StageCuts {
			stageFired[stage] += n
		}
		for _, ev := range fr.Events() {
			switch ev.Kind {
			case "commit", "commit_attempt":
				legit[ev.Value] = true
			case "restore":
				if !legit[ev.Value] {
					t.Errorf("seed %d: restore event (step %d) digest %016x matches no prior commit/commit_attempt", seed, ev.Step, ev.Value)
				}
			}
		}
	}
	if crashes == 0 {
		t.Fatal("soak fired no crashes; the cut schedule is broken")
	}
	if restores == 0 {
		t.Fatal("soak performed no restores")
	}
	for _, stage := range pipelineStages {
		if stageFired[stage] == 0 {
			t.Errorf("no crash attributed to the %q stage across all seeds: %v", stage, stageFired)
		}
	}
}

// TestPipelineServeRaceSoak is the three-party concurrency soak: the
// mutator steps and persists, the background worker writes versions back,
// and MVCC snapshot readers query pinned committed versions — all at
// once, no faults. Pinned snapshots must stay bit-identical across
// double reads (readers see only crash-consistent durable versions), and
// the run must end clean under -race.
func TestPipelineServeRaceSoak(t *testing.T) {
	steps := 40
	if testing.Short() {
		steps = 12
	}
	tree := core.Create(core.Config{
		NVBMDevice:        nvbm.New(nvbm.NVBM, 0),
		DRAMDevice:        nvbm.New(nvbm.DRAM, 0),
		DRAMBudgetOctants: 4096,
		Seed:              11,
		PipelineDepth:     3,
		GroupCommit:       2,
	})
	d := sim.NewDroplet(sim.DropletConfig{Steps: steps + 2})
	tree.SetFeatures(d.Feature(1))
	srv := startChaosServing(4, tree)

	for s := 1; s <= steps; s++ {
		sim.Step(tree, d, s, 4)
		tree.SetFeatures(d.Feature(s + 1))
		tree.Persist()
		srv.publish()
	}
	tree.Flush()
	var qs QueryStats
	srv.stop(&qs)
	if qs.Mismatches > 0 {
		t.Fatalf("pinned snapshots diverged under the persist worker: %+v", qs)
	}
	if qs.Served == 0 {
		t.Fatalf("readers served nothing: %+v", qs)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tree.PipelineStats()
	if st.Enqueued != uint64(steps) {
		t.Fatalf("enqueued %d, stepped %d", st.Enqueued, steps)
	}
	tree.Close()
}
