// Package fault is the deterministic, seeded fault-injection layer and
// chaos harness. It drives the droplet workload while injecting the ugly
// NVBM failure modes the rest of the repo defends against — torn power
// cuts (the in-flight store persists only a subset of its cache lines),
// silent media bit-rot, wear-threshold stuck lines, and lossy replica
// shipping — and asserts after every crash that recovery yields a
// validated, previously committed version: the paper's §5.6 guarantee
// under adversarial conditions rather than clean stops.
//
// Everything is driven by a single seed; a run is bit-reproducible.
package fault

import (
	"math/rand"

	"pmoctree/internal/nvbm"
)

// Profile sets the per-step fault intensities for an Injector.
type Profile struct {
	// CutProb is the per-step probability of arming a torn power cut.
	CutProb float64
	// CutWindow bounds the armed write countdown: the cut fires after
	// a uniform [0, CutWindow) further NVBM writes, placing it anywhere
	// inside the step's persistence traffic.
	CutWindow int
	// RotProb is the per-step probability of a bit-rot event.
	RotProb float64
	// RotBurst is the maximum bit flips per rot event.
	RotBurst int
	// DropProb and CorruptProb parameterize the lossy replica link.
	DropProb    float64
	CorruptProb float64
	// WearLimit is the per-line endurance threshold (0 = unlimited);
	// SpareLines is the remap pool scrub draws from.
	WearLimit  uint32
	SpareLines int
}

// DefaultProfile returns fault intensities tuned so a few dozen steps see
// several torn crashes, repeated bit-rot, occasional wear-out remaps, and
// dropped replica frames, without making runs degenerate.
func DefaultProfile() Profile {
	return Profile{
		CutProb:     0.25,
		CutWindow:   3000,
		RotProb:     0.5,
		RotBurst:    8,
		DropProb:    0.15,
		CorruptProb: 0.10,
		WearLimit:   4000,
		SpareLines:  512,
	}
}

// Injector draws fault decisions from one seeded stream, so a fixed seed
// reproduces the exact same fault schedule.
type Injector struct {
	rng *rand.Rand
	p   Profile

	CutsArmed   uint64
	RotEvents   uint64
	BitsFlipped uint64
}

// NewInjector builds an injector over the profile with its own RNG.
func NewInjector(seed int64, p Profile) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), p: p}
}

// ArmTornCut maybe arms a torn power cut on d for the coming step,
// reporting whether it did. The countdown and the tear pattern are both
// drawn from the injector's stream.
func (in *Injector) ArmTornCut(d *nvbm.Device) bool {
	if in.p.CutProb <= 0 || in.rng.Float64() >= in.p.CutProb {
		return false
	}
	window := in.p.CutWindow
	if window <= 0 {
		window = 1
	}
	d.CutPowerAfterTorn(in.rng.Intn(window), in.rng.Int63())
	in.CutsArmed++
	return true
}

// InjectRot maybe flips up to RotBurst random bits of d, returning how
// many were flipped.
func (in *Injector) InjectRot(d *nvbm.Device) int {
	if in.p.RotProb <= 0 || in.rng.Float64() >= in.p.RotProb {
		return 0
	}
	size := d.Size()
	if size == 0 {
		return 0
	}
	n := 1 + in.rng.Intn(max(in.p.RotBurst, 1))
	flipped := 0
	for i := 0; i < n; i++ {
		if d.FlipBit(in.rng.Intn(size), uint8(in.rng.Intn(8))) {
			flipped++
		}
	}
	if flipped > 0 {
		in.RotEvents++
		in.BitsFlipped += uint64(flipped)
	}
	return flipped
}
