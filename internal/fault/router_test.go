package fault

import (
	"testing"

	"pmoctree/internal/telemetry"
)

// TestRouterChaosZeroWrongAnswers: the full soak — shards killed and
// restarted (some mid-scatter) with at least one down whenever queries
// run — must produce zero wrong answers, keep availability at or above
// 99%, and actually exercise the failover paths it exists to test.
func TestRouterChaosZeroWrongAnswers(t *testing.T) {
	reg := telemetry.NewRegistry()
	fr := telemetry.NewFlightRecorder(512)
	rep, err := RunRouterChaos(RouterChaosConfig{
		Seed:     7,
		Rounds:   16,
		Registry: reg,
		Recorder: fr,
	})
	t.Logf("\n%s", rep)
	if err != nil {
		t.Fatalf("soak failed: %v", err)
	}
	if rep.WrongAnswers != 0 {
		t.Fatalf("wrong answers: %d", rep.WrongAnswers)
	}
	if rep.Queries == 0 || rep.Availability < 0.99 {
		t.Fatalf("availability %.4f over %d queries, want >= 0.99", rep.Availability, rep.Queries)
	}
	if rep.Kills+rep.FuseKills == 0 || rep.Restarts == 0 {
		t.Fatalf("chaos schedule inert: kills=%d fuse=%d restarts=%d", rep.Kills, rep.FuseKills, rep.Restarts)
	}
	if rep.Takeovers+rep.ReplicaFallbacks == 0 {
		t.Fatalf("no failover path exercised: takeovers=%d replica=%d", rep.Takeovers, rep.ReplicaFallbacks)
	}
	if rep.ReplicaRefreshes == 0 {
		t.Fatal("no replica images were restored")
	}

	// The black box saw the chaos: kill/restart events must be present.
	var kills, restarts int
	for _, ev := range fr.Events() {
		switch ev.Kind {
		case "shard_kill", "shard_fuse":
			kills++
		case "shard_restart":
			restarts++
		}
	}
	if kills == 0 || restarts == 0 {
		t.Fatalf("flight recorder missed the schedule: kills=%d restarts=%d", kills, restarts)
	}
}

// TestRouterChaosDeterministicDigest: the commit history + chaos
// schedule digest is a pure function of the seed, even though query-side
// tallies may vary with scatter timing.
func TestRouterChaosDeterministicDigest(t *testing.T) {
	run := func() RouterChaosReport {
		rep, err := RunRouterChaos(RouterChaosConfig{Seed: 11, Rounds: 8})
		if err != nil {
			t.Fatalf("soak failed: %v", err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Digest != b.Digest {
		t.Fatalf("same-seed digests differ: %016x vs %016x", a.Digest, b.Digest)
	}
	if a.Kills != b.Kills || a.FuseKills != b.FuseKills || a.Restarts != b.Restarts {
		t.Fatalf("same-seed schedules differ: %+v vs %+v", a, b)
	}
	if a.FinalStep != b.FinalStep {
		t.Fatalf("same-seed final steps differ: %d vs %d", a.FinalStep, b.FinalStep)
	}
	c, err := RunRouterChaos(RouterChaosConfig{Seed: 12, Rounds: 8})
	if err != nil {
		t.Fatalf("soak failed: %v", err)
	}
	if c.Digest == a.Digest {
		t.Fatalf("different seeds produced the same digest %016x", a.Digest)
	}
}
