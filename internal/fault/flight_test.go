package fault

import (
	"os"
	"path/filepath"
	"testing"

	"pmoctree/internal/telemetry"
)

// TestChaosFlightRecorder runs the soak with a flight recorder attached
// and checks the black box it leaves behind: every restore landed on a
// digest some commit or commit-attempt event published first, and the
// last committed-step event in the dump names exactly the version the
// run finished on. This is the post-mortem contract — after a kill, the
// dump alone identifies the recovered version.
func TestChaosFlightRecorder(t *testing.T) {
	fr := telemetry.NewFlightRecorder(4096)
	rep, err := Run(ChaosConfig{Seed: 1, Steps: 40, Recorder: fr})
	if err != nil {
		t.Fatalf("recovery guarantee violated: %v\n%s", err, rep)
	}
	if rep.Crashes == 0 {
		t.Fatalf("seed 1 fired no crashes; pick a seed that exercises recovery\n%s", rep)
	}

	// Round-trip through the JSONL dump: assertions run against what a
	// post-mortem reader would actually see on disk.
	dump := filepath.Join(t.TempDir(), "flight.jsonl")
	if err := fr.DumpFile(dump); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(dump)
	if err != nil {
		t.Fatal(err)
	}
	events, err := telemetry.ReadFlightDump(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("soak left an empty flight dump")
	}

	// Digests published by commit/commit_attempt events are the only
	// legitimate recovery targets.
	legit := map[uint64]bool{}
	var crashes, restores, scrubs int
	var lastCommitted *telemetry.FlightEvent
	for i := range events {
		ev := events[i]
		switch ev.Kind {
		case "commit", "commit_attempt":
			legit[ev.Value] = true
			if ev.Kind == "commit" {
				lastCommitted = &events[i]
			}
		case "crash":
			crashes++
		case "restore":
			restores++
			if !legit[ev.Value] {
				t.Errorf("restore event (step %d) digest %016x matches no prior commit/commit_attempt", ev.Step, ev.Value)
			}
			lastCommitted = &events[i]
		case "scrub":
			scrubs++
		}
	}
	if crashes == 0 {
		t.Errorf("report counts %d crashes but the dump has no crash event", rep.Crashes)
	}
	if restores != rep.Restores {
		t.Errorf("dump has %d restore events, report counts %d restores", restores, rep.Restores)
	}
	if scrubs != rep.ScrubPasses {
		t.Errorf("dump has %d scrub events, report counts %d scrub passes", scrubs, rep.ScrubPasses)
	}
	if lastCommitted == nil {
		t.Fatal("no commit or restore event in the dump")
	}
	// The last committed-step event identifies the version the run ended
	// on — the acceptance criterion for post-kill triage.
	if lastCommitted.Step != rep.FinalStep {
		t.Errorf("last committed-step event names step %d, run finished on step %d",
			lastCommitted.Step, rep.FinalStep)
	}
}

// TestChaosRecorderInvisible pins the contract documented on
// ChaosConfig.Recorder: attaching a recorder never perturbs the run. The
// report must stay bit-identical to a recorder-free run on the same seed.
func TestChaosRecorderInvisible(t *testing.T) {
	plain, err := Run(ChaosConfig{Seed: 42, Steps: 25})
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	recorded, err := Run(ChaosConfig{Seed: 42, Steps: 25, Recorder: telemetry.NewFlightRecorder(4096)})
	if err != nil {
		t.Fatalf("recorded run: %v", err)
	}
	if plain != recorded {
		t.Fatalf("flight recorder perturbed the soak:\nplain:    %srecorded: %s", plain, recorded)
	}
}
