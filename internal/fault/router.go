package fault

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pmoctree/internal/cluster"
	"pmoctree/internal/core"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/recovery"
	"pmoctree/internal/router"
	"pmoctree/internal/serve"
	"pmoctree/internal/sim"
	"pmoctree/internal/telemetry"
)

// RouterChaosConfig parameterizes the sharded-serving chaos soak: a
// router over N in-process shards, with shards killed and restarted
// (sometimes mid-scatter, via a call-count fuse) while queries flow.
type RouterChaosConfig struct {
	Seed            int64
	Shards          int // shard backends (default 3, min 2)
	Rounds          int // soak rounds; each advances the fleet one step (default 18)
	QueriesPerRound int // routed queries per round (default 8)
	MaxLevel        uint8
	Keep            int // versions each shard catalog retains (default 3)
	ReplicaEvery    int // replica sync/refresh cadence in rounds (default 2)
	// Recorder, when non-nil, receives the soak's kill/restart/refresh
	// events plus the router's own breaker/fallback/stale flight events —
	// the black box for a failed run.
	Recorder *telemetry.FlightRecorder
	// Registry, when non-nil, receives the router's metrics.
	Registry *telemetry.Registry
}

func (c RouterChaosConfig) withDefaults() RouterChaosConfig {
	if c.Shards < 2 {
		c.Shards = 3
	}
	if c.Rounds <= 0 {
		c.Rounds = 18
	}
	if c.QueriesPerRound <= 0 {
		c.QueriesPerRound = 8
	}
	if c.MaxLevel == 0 {
		c.MaxLevel = 4
	}
	if c.Keep <= 0 {
		c.Keep = 3
	}
	if c.ReplicaEvery <= 0 {
		c.ReplicaEvery = 2
	}
	return c
}

// RouterChaosReport is the outcome of a router chaos soak. Digest covers
// the reference commit history and the seed-driven chaos schedule, both
// pure functions of the config — two same-seed runs must produce equal
// digests. Query-side tallies are NOT digested: scatter goroutine timing
// legitimately varies which fallback path serves a part.
type RouterChaosReport struct {
	Seed   int64
	Shards int
	Rounds int

	Kills            int // immediate shard kills
	FuseKills        int // call-count fuses armed (fire mid-scatter)
	Restarts         int // shard restarts (catalog history lost)
	ReplicaRefreshes int // replica images restored and rebound

	Queries        uint64
	Served         uint64 // queries answered (degraded or not)
	Unavailable    uint64 // queries that failed outright
	DegradedServes uint64 // answers labeled degraded/stale_version
	WrongAnswers   uint64 // answers that diverged from single-tree replay

	Retries          uint64 // from router metrics
	Hedges           uint64
	ReplicaFallbacks uint64
	Takeovers        uint64
	StaleFallbacks   uint64
	BreakerOpens     uint64

	FinalStep    uint64  // reference committed step at run end
	Availability float64 // Served / Queries
	Digest       uint64  // FNV-64a over commit history + chaos schedule
}

// String renders the report as a stable, diffable summary.
func (r RouterChaosReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "router-chaos seed=%d shards=%d rounds=%d\n", r.Seed, r.Shards, r.Rounds)
	fmt.Fprintf(&b, "  chaos: kills=%d fuse_kills=%d restarts=%d replica_refreshes=%d\n",
		r.Kills, r.FuseKills, r.Restarts, r.ReplicaRefreshes)
	fmt.Fprintf(&b, "  queries: total=%d served=%d unavailable=%d degraded=%d wrong=%d\n",
		r.Queries, r.Served, r.Unavailable, r.DegradedServes, r.WrongAnswers)
	fmt.Fprintf(&b, "  paths: retries=%d hedges=%d replica=%d takeover=%d stale=%d breaker_opens=%d\n",
		r.Retries, r.Hedges, r.ReplicaFallbacks, r.Takeovers, r.StaleFallbacks, r.BreakerOpens)
	fmt.Fprintf(&b, "  final: step=%d availability=%.4f digest=%016x\n", r.FinalStep, r.Availability, r.Digest)
	return b.String()
}

// chaosShard is one shard process: its own deterministic droplet tree on
// its own device, a catalog + scheduler behind a swappable local backend,
// and a kill gate. Killing flips the gate (the process stops answering);
// restarting rebuilds the catalog over the surviving tree, so pinned
// history is lost and only the newest committed version comes back — the
// version-skew that drives stale fallback. A fuse kills the shard after
// a fixed number of further backend calls, landing mid-scatter.
type chaosShard struct {
	id       int
	maxLevel uint8
	keep     int
	dev      *nvbm.Device
	tree     *core.Tree
	d        *sim.Droplet
	step     int // last committed sim step (own clock; lags while down)

	down atomic.Bool
	fuse atomic.Int64

	mu    sync.RWMutex
	cat   *serve.Catalog
	sched *serve.Scheduler
	be    *router.LocalBackend
}

// routerChaosSimSteps is the fixed nominal droplet duration: step s maps
// to time s/Steps, so every shard and the reference must share one
// denominator for step s to be the same physical state everywhere.
const routerChaosSimSteps = 64

func newChaosShard(id int, maxLevel uint8, keep int, seed int64) *chaosShard {
	s := &chaosShard{id: id, maxLevel: maxLevel, keep: keep}
	s.dev = nvbm.New(nvbm.NVBM, 0)
	s.tree = core.Create(core.Config{
		NVBMDevice:     s.dev,
		DRAMDevice:     nvbm.New(nvbm.DRAM, 0),
		Seed:           seed,
		RetainVersions: 2,
	})
	s.d = sim.NewDroplet(sim.DropletConfig{Steps: routerChaosSimSteps})
	s.tree.SetFeatures(s.d.Feature(1))
	s.cat = serve.NewCatalog(s.tree, serve.Config{Keep: keep})
	s.sched = serve.NewScheduler(serve.SchedulerConfig{})
	s.be = router.NewLocalBackend(fmt.Sprintf("shard%d", id), s.cat, s.sched)
	return s
}

// advance commits one more sim step and publishes it. Only called while
// alive, from the soak loop.
func (s *chaosShard) advance() {
	s.step++
	sim.Step(s.tree, s.d, s.step, s.maxLevel)
	s.tree.SetFeatures(s.d.Feature(s.step + 1))
	s.tree.Persist()
	s.mu.RLock()
	if snap, err := s.cat.Publish(); err == nil {
		snap.Close()
	}
	s.mu.RUnlock()
}

// advanceTo replays steps up to the fleet clock: a shard that was down
// resyncs the simulation feed it missed, commit by commit, once alive
// again. Its catalog ends up holding the newest Keep versions, same as
// everyone else's.
func (s *chaosShard) advanceTo(target int) {
	for s.step < target {
		s.advance()
	}
}

// kill stops the shard from answering, optionally after `fuse` more
// backend calls (a mid-scatter death).
func (s *chaosShard) kill(fuse int64) {
	if fuse > 0 {
		s.fuse.Store(fuse)
		return
	}
	s.down.Store(true)
}

// restart brings the shard back: the old catalog (and its pinned
// history) is gone; the rebuilt one republishes only the tree's current
// committed version.
func (s *chaosShard) restart() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sched.Close()
	s.cat.Close()
	s.cat = serve.NewCatalog(s.tree, serve.Config{Keep: s.keep})
	if snap, err := s.cat.Publish(); err == nil {
		snap.Close()
	}
	s.sched = serve.NewScheduler(serve.SchedulerConfig{})
	s.be = router.NewLocalBackend(fmt.Sprintf("shard%d", s.id), s.cat, s.sched)
	s.fuse.Store(0)
	s.down.Store(false)
}

func (s *chaosShard) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sched.Close()
	s.cat.Close()
}

// gate applies the fuse and the kill switch before every backend call.
func (s *chaosShard) gate() error {
	for {
		f := s.fuse.Load()
		if f <= 0 {
			break
		}
		if s.fuse.CompareAndSwap(f, f-1) {
			if f == 1 {
				s.down.Store(true)
			}
			break
		}
	}
	if s.down.Load() {
		return fmt.Errorf("%w: shard%d killed", router.ErrBackendDown, s.id)
	}
	return nil
}

func (s *chaosShard) backend() router.Backend {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.be
}

func (s *chaosShard) Name() string { return fmt.Sprintf("shard%d", s.id) }

func (s *chaosShard) Point(ctx context.Context, v uint64, x, y, z float64) (serve.PointResult, error) {
	if err := s.gate(); err != nil {
		return serve.PointResult{}, err
	}
	return s.backend().Point(ctx, v, x, y, z)
}

func (s *chaosShard) Region(ctx context.Context, v uint64, box serve.Box, kr serve.KeyRange) (router.RegionResult, error) {
	if err := s.gate(); err != nil {
		return router.RegionResult{}, err
	}
	return s.backend().Region(ctx, v, box, kr)
}

func (s *chaosShard) Aggregate(ctx context.Context, v uint64, field int, box serve.Box, kr serve.KeyRange) (serve.AggResult, error) {
	if err := s.gate(); err != nil {
		return serve.AggResult{}, err
	}
	return s.backend().Aggregate(ctx, v, field, box, kr)
}

func (s *chaosShard) Versions(ctx context.Context) ([]uint64, error) {
	if err := s.gate(); err != nil {
		return nil, err
	}
	return s.backend().Versions(ctx)
}

func (s *chaosShard) Probe(ctx context.Context) error {
	if err := s.gate(); err != nil {
		return err
	}
	return s.backend().Probe(ctx)
}

// replicaShard is the recovery-replica backend for one shard: a catalog
// over a tree restored from the shard's ReplicaManager image. Until the
// first refresh it reports down; after that it serves whatever committed
// version the last shipped frame held — typically lagging the primary.
type replicaShard struct {
	id int

	mu    sync.RWMutex
	cat   *serve.Catalog
	sched *serve.Scheduler
	be    *router.LocalBackend
}

func (r *replicaShard) Name() string { return fmt.Sprintf("shard%d-replica", r.id) }

// rebind restores a tree from the replica image and serves its committed
// version. Called from the soak loop only.
func (r *replicaShard) rebind(img *nvbm.Device, seed int64) error {
	t, err := core.Restore(core.Config{
		NVBMDevice:     img,
		DRAMDevice:     nvbm.New(nvbm.DRAM, 0),
		Seed:           seed,
		RetainVersions: 2,
	})
	if err != nil {
		return err
	}
	cat := serve.NewCatalog(t, serve.Config{Keep: 1})
	if snap, err := cat.Publish(); err != nil {
		cat.Close()
		return err
	} else {
		snap.Close()
	}
	sched := serve.NewScheduler(serve.SchedulerConfig{})
	r.mu.Lock()
	old, oldSched := r.cat, r.sched
	r.cat, r.sched = cat, sched
	r.be = router.NewLocalBackend(r.Name(), cat, sched)
	r.mu.Unlock()
	if oldSched != nil {
		oldSched.Close()
	}
	if old != nil {
		old.Close()
	}
	return nil
}

func (r *replicaShard) backend() (router.Backend, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.be == nil {
		return nil, fmt.Errorf("%w: replica for shard%d never synced", router.ErrBackendDown, r.id)
	}
	return r.be, nil
}

func (r *replicaShard) close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sched != nil {
		r.sched.Close()
	}
	if r.cat != nil {
		r.cat.Close()
	}
}

func (r *replicaShard) Point(ctx context.Context, v uint64, x, y, z float64) (serve.PointResult, error) {
	be, err := r.backend()
	if err != nil {
		return serve.PointResult{}, err
	}
	return be.Point(ctx, v, x, y, z)
}

func (r *replicaShard) Region(ctx context.Context, v uint64, box serve.Box, kr serve.KeyRange) (router.RegionResult, error) {
	be, err := r.backend()
	if err != nil {
		return router.RegionResult{}, err
	}
	return be.Region(ctx, v, box, kr)
}

func (r *replicaShard) Aggregate(ctx context.Context, v uint64, field int, box serve.Box, kr serve.KeyRange) (serve.AggResult, error) {
	be, err := r.backend()
	if err != nil {
		return serve.AggResult{}, err
	}
	return be.Aggregate(ctx, v, field, box, kr)
}

func (r *replicaShard) Versions(ctx context.Context) ([]uint64, error) {
	be, err := r.backend()
	if err != nil {
		return nil, err
	}
	return be.Versions(ctx)
}

func (r *replicaShard) Probe(ctx context.Context) error {
	be, err := r.backend()
	if err != nil {
		return err
	}
	return be.Probe(ctx)
}

// RunRouterChaos soaks the query router against a fleet of in-process
// shards while the seed-driven schedule kills and restarts them — at
// least one shard is down whenever queries run, and some kills are armed
// as call-count fuses that fire between the parts of a single scattered
// query. Every answer is checked against a never-failing reference tree
// advanced in lockstep:
//
//   - a non-degraded answer must be bit-identical to a single-tree replay
//     of the served version (regions and points exactly; aggregates via
//     the same per-span merge the router performs);
//   - a degraded answer must carry the stale_version marker, serve a
//     strictly older version than requested, and STILL be bit-identical
//     to the replay of that (really committed) version.
//
// Any divergence counts as a wrong answer and fails the run.
func RunRouterChaos(cfg RouterChaosConfig) (RouterChaosReport, error) {
	cfg = cfg.withDefaults()
	rep := RouterChaosReport{Seed: cfg.Seed, Shards: cfg.Shards, Rounds: cfg.Rounds}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// schedule digest: commit history plus every chaos decision, all pure
	// functions of the seed.
	hist := fnv.New64a()
	mix := func(vs ...uint64) {
		var b [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(b[:], v)
			hist.Write(b[:])
		}
	}

	// The reference: same deterministic workload, never killed, keeps
	// every version ever committed.
	ref := newChaosShard(-1, cfg.MaxLevel, cfg.Rounds+2, cfg.Seed)
	defer ref.close()

	shards := make([]*chaosShard, cfg.Shards)
	replicas := make([]*replicaShard, cfg.Shards)
	shardCfgs := make([]router.ShardConfig, cfg.Shards)
	for i := range shards {
		shards[i] = newChaosShard(i, cfg.MaxLevel, cfg.Keep, cfg.Seed)
		replicas[i] = &replicaShard{id: i}
		shardCfgs[i] = router.ShardConfig{Primary: shards[i], Replica: replicas[i]}
	}
	defer func() {
		for i := range shards {
			shards[i].close()
			replicas[i].close()
		}
	}()

	mgr := recovery.NewReplicaManager(cfg.Shards+1, 0, cluster.Gemini())

	// The breaker runs on a virtual clock advanced one second per round:
	// open quiet periods elapse on the round cadence (deterministically),
	// not on however fast the host happens to execute the soak.
	var clockMu sync.Mutex
	clock := time.Unix(0, 0)
	breakerNow := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	tickClock := func() {
		clockMu.Lock()
		clock = clock.Add(time.Second)
		clockMu.Unlock()
	}

	r, err := router.New(router.Config{
		Shards:     shardCfgs,
		MaxRetries: 2,
		HedgeDelay: 2 * time.Millisecond,
		Breaker:    router.BreakerConfig{FailureThreshold: 2, OpenTimeout: time.Second, HalfOpenSuccesses: 1, Now: breakerNow},
		Health:     router.HealthConfig{DownAfter: 2, ReviveAfter: 1, DegradeAfter: 3, ClearAfter: 2},
		Registry:   cfg.Registry,
		Recorder:   cfg.Recorder,
		Sleep:      func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
	})
	if err != nil {
		return rep, err
	}
	defer r.Close()
	ctx := context.Background()

	// refSteps tracks every committed reference version, newest last; the
	// shard fleet's versions are always a subset (same workload, same
	// sequential step clock).
	var refSteps []uint64

	advanceAll := func() {
		ref.advance()
		refSteps = append(refSteps, ref.tree.CommittedStep())
		mix(commitDigest(ref.tree))
		cfg.Recorder.Record(telemetry.FlightEvent{Kind: "commit", Step: ref.tree.CommittedStep(), Value: commitDigest(ref.tree)})
		for _, s := range shards {
			if !s.down.Load() {
				s.advanceTo(ref.step)
			}
		}
	}

	kill := func(id int, fuse int64) {
		shards[id].kill(fuse)
		if fuse > 0 {
			rep.FuseKills++
			mix(2, uint64(id), uint64(fuse))
			cfg.Recorder.Record(telemetry.FlightEvent{Kind: "shard_fuse", Step: uint64(id), Value: uint64(fuse)})
		} else {
			rep.Kills++
			mix(1, uint64(id))
			cfg.Recorder.Record(telemetry.FlightEvent{Kind: "shard_kill", Step: uint64(id)})
		}
	}
	restart := func(id int) {
		shards[id].restart()
		rep.Restarts++
		mix(3, uint64(id))
		cfg.Recorder.Record(telemetry.FlightEvent{Kind: "shard_restart", Step: uint64(id), Value: shards[id].tree.CommittedStep()})
	}

	pickFrom := func(ids []int) int { return ids[rng.Intn(len(ids))] }
	partition := func() (alive, dead []int) {
		for i, s := range shards {
			if s.down.Load() {
				dead = append(dead, i)
			} else {
				alive = append(alive, i)
			}
		}
		return
	}
	armKill := func(id int) {
		if rng.Intn(2) == 0 {
			kill(id, 0)
		} else {
			kill(id, int64(1+rng.Intn(4)))
		}
	}

	for round := 1; round <= cfg.Rounds; round++ {
		tickClock()
		advanceAll()

		// Replica sync on cadence: alive shards ship a delta frame; one
		// rng-chosen replica restores its image and rebinds, so replica
		// backends serve real (lagging) committed versions.
		if round%cfg.ReplicaEvery == 0 {
			alive, _ := partition()
			for _, id := range alive {
				if err := mgr.Sync(id, shards[id].dev); err != nil {
					return rep, fmt.Errorf("round %d: replica sync shard%d: %w", round, id, err)
				}
			}
			if len(alive) > 0 {
				id := pickFrom(alive)
				if img, _, err := mgr.Recover(id); err == nil {
					if err := replicas[id].rebind(img, cfg.Seed); err != nil {
						return rep, fmt.Errorf("round %d: replica rebind shard%d: %w", round, id, err)
					}
					rep.ReplicaRefreshes++
					mix(4, uint64(id))
					cfg.Recorder.Record(telemetry.FlightEvent{Kind: "replica_refresh", Step: uint64(id)})
				}
			}
		}

		// Chaos schedule: keep at least one shard down whenever queries
		// run, never leave fewer than one alive.
		alive, dead := partition()
		switch {
		case len(dead) == 0:
			armKill(pickFrom(alive))
		case len(dead) >= 2:
			restart(pickFrom(dead))
		default: // exactly one down
			switch rng.Intn(3) {
			case 0: // rotate the outage
				next := pickFrom(alive)
				restart(dead[0])
				armKill(next)
			case 1: // widen the outage, keeping one survivor
				if len(alive) > 1 {
					armKill(pickFrom(alive))
				}
			}
		}
		// Fuses count as "down" for the invariant only once they fire;
		// ensure something is hard-down before querying.
		if _, dead := partition(); len(dead) == 0 {
			alive, _ := partition()
			if len(alive) > 1 {
				kill(pickFrom(alive), 0)
			}
		}
		r.Probe(ctx)

		for q := 0; q < cfg.QueriesPerRound; q++ {
			// 1-in-4 queries pin one of the three newest reference
			// versions; the rest ask for Latest.
			version := uint64(router.Latest)
			if rng.Intn(4) == 0 {
				back := rng.Intn(3)
				if back >= len(refSteps) {
					back = len(refSteps) - 1
				}
				version = refSteps[len(refSteps)-1-back]
			}
			rep.Queries++
			wrong, served, degraded, err := runRouterChaosQuery(ctx, r, ref, rng, version)
			if err != nil {
				rep.Unavailable++
				cfg.Recorder.Record(telemetry.FlightEvent{Kind: "query_unavailable", Step: uint64(round), Detail: err.Error()})
				continue
			}
			rep.Served++
			if degraded {
				rep.DegradedServes++
			}
			if wrong != "" {
				rep.WrongAnswers++
				cfg.Recorder.Record(telemetry.FlightEvent{Kind: "wrong_answer", Step: served, Detail: wrong})
			}
		}
	}

	rep.FinalStep = ref.tree.CommittedStep()
	rep.Digest = hist.Sum64()
	if rep.Queries > 0 {
		rep.Availability = float64(rep.Served) / float64(rep.Queries)
	}
	if cfg.Registry != nil {
		rep.Retries = cfg.Registry.Counter("router.retries").Value()
		rep.Hedges = cfg.Registry.Counter("router.hedges").Value()
		rep.ReplicaFallbacks = cfg.Registry.Counter("router.fallback.replica").Value()
		rep.Takeovers = cfg.Registry.Counter("router.fallback.takeover").Value()
		rep.StaleFallbacks = cfg.Registry.Counter("router.fallback.stale").Value()
		rep.BreakerOpens = cfg.Registry.Counter("router.breaker.opens").Value()
	}
	if rep.WrongAnswers > 0 {
		return rep, fmt.Errorf("router chaos: %d wrong answers (of %d served)", rep.WrongAnswers, rep.Served)
	}
	return rep, nil
}

// runRouterChaosQuery fires one routed query and verifies the answer
// against the reference tree. It returns a non-empty `wrong` description
// when the answer diverges from the single-tree replay of the served
// version, or violates the degraded-labeling contract.
func runRouterChaosQuery(ctx context.Context, r *router.Router, ref *chaosShard, rng *rand.Rand, version uint64) (wrong string, served uint64, degraded bool, err error) {
	kind := rng.Intn(3)
	var (
		pt  [3]float64
		box serve.Box
	)
	for d := 0; d < 3; d++ {
		pt[d] = rng.Float64()
		a, b := rng.Float64(), rng.Float64()
		if a > b {
			a, b = b, a
		}
		if a == b {
			b = a + 1e-6
		}
		box.Min[d], box.Max[d] = a, b
	}
	field := rng.Intn(2)

	check := func(env router.Envelope, verify func(snap *serve.Snapshot) string) (string, uint64, bool, error) {
		if !env.Degraded && env.ServedStep != env.RequestedStep {
			return fmt.Sprintf("unlabeled version drift: served %d, requested %d", env.ServedStep, env.RequestedStep), env.ServedStep, false, nil
		}
		if env.Degraded {
			ok := false
			for _, reason := range env.Reasons {
				if reason == "stale_version" {
					ok = true
				}
			}
			if !ok || env.ServedStep >= env.RequestedStep {
				return fmt.Sprintf("bad degraded labeling: served %d, requested %d, reasons %v", env.ServedStep, env.RequestedStep, env.Reasons), env.ServedStep, true, nil
			}
		}
		snap, aerr := ref.cat.Acquire(env.ServedStep)
		if aerr != nil {
			return fmt.Sprintf("served version %d was never committed: %v", env.ServedStep, aerr), env.ServedStep, env.Degraded, nil
		}
		defer snap.Close()
		return verify(snap), env.ServedStep, env.Degraded, nil
	}

	switch kind {
	case 0:
		ans, qerr := r.Point(ctx, version, pt[0], pt[1], pt[2])
		if qerr != nil {
			return "", 0, false, qerr
		}
		return check(ans.Envelope, func(snap *serve.Snapshot) string {
			want, werr := snap.Point(pt[0], pt[1], pt[2])
			if werr != nil {
				return fmt.Sprintf("replay point failed: %v", werr)
			}
			if ans.Result.Code != want.Code || ans.Result.Data != want.Data || ans.Result.Step != want.Step {
				return fmt.Sprintf("point mismatch at v%d", ans.ServedStep)
			}
			return ""
		})
	case 1:
		ans, qerr := r.Region(ctx, version, box)
		if qerr != nil {
			return "", 0, false, qerr
		}
		return check(ans.Envelope, func(snap *serve.Snapshot) string {
			want, werr := snap.RegionIn(box, serve.KeyRange{})
			if werr != nil {
				return fmt.Sprintf("replay region failed: %v", werr)
			}
			if len(want) != len(ans.Hits) {
				return fmt.Sprintf("region mismatch at v%d: %d hits, replay %d", ans.ServedStep, len(ans.Hits), len(want))
			}
			for i := range want {
				if want[i].Code != ans.Hits[i].Code || want[i].Data != ans.Hits[i].Data {
					return fmt.Sprintf("region hit %d mismatch at v%d", i, ans.ServedStep)
				}
			}
			return ""
		})
	default:
		ans, qerr := r.Aggregate(ctx, version, field, box)
		if qerr != nil {
			return "", 0, false, qerr
		}
		return check(ans.Envelope, func(snap *serve.Snapshot) string {
			// Replay the router's own distributed merge: per-span partials
			// folded in span order, bit-identical or bust.
			want := serve.AggResult{Step: ans.ServedStep}
			first := true
			for i := 0; i < r.Map().Len(); i++ {
				part, werr := snap.AggregateIn(field, box, r.Map().Span(i))
				if werr != nil {
					return fmt.Sprintf("replay agg failed: %v", werr)
				}
				if part.Count == 0 {
					continue
				}
				want.Count += part.Count
				want.Sum += part.Sum
				want.VolSum += part.VolSum
				if first || part.Min < want.Min {
					want.Min = part.Min
				}
				if first || part.Max > want.Max {
					want.Max = part.Max
				}
				first = false
			}
			if ans.Result != want {
				return fmt.Sprintf("agg mismatch at v%d: %+v vs %+v", ans.ServedStep, ans.Result, want)
			}
			return ""
		})
	}
}
