package fault

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"pmoctree/internal/cluster"
	"pmoctree/internal/core"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/recovery"
	"pmoctree/internal/sim"
	"pmoctree/internal/telemetry"
)

// ChaosConfig parameterizes a chaos soak run.
type ChaosConfig struct {
	Seed       int64
	Steps      int   // droplet steps to attempt (default 40)
	MaxLevel   uint8 // refinement bound (default 4)
	DRAMBudget int   // C0 budget in octants (default 4096)
	Profile    Profile
	// CacheCommittedReads forwards core.Config.CacheCommittedReads: the
	// soak then runs with the decoded-octant cache eliding committed-read
	// device traffic, proving cache coherence under crash/restore churn
	// (the report digests are seed-deterministic either way).
	CacheCommittedReads bool
	// QueryReaders, when positive, runs that many concurrent MVCC snapshot
	// readers (internal/serve) against a catalog of pinned committed
	// versions for the whole soak — querying while the writer steps,
	// crashes, and recovers. Every batch double-reads one immutable
	// snapshot and must see bit-identical results; a divergence fails the
	// run. Reader timing perturbs arena layout (pin lifetimes change what
	// GC can free), so reports are no longer bit-reproducible across runs
	// when this is set.
	QueryReaders int
	// QueryStats, when non-nil, receives the query-side totals at run end.
	QueryStats *QueryStats
	// Recorder, when non-nil, receives a flight event per commit attempt,
	// commit, crash, restore, scrub pass, and rot injection, so a failed
	// soak leaves a black box: the dump's commit/commit_attempt digests
	// are exactly the legitimate recovery targets, and every restore event
	// must name one of them. The recorder never feeds report fields, so
	// bit-reproducibility per seed is unaffected.
	Recorder *telemetry.FlightRecorder
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Steps <= 0 {
		c.Steps = 40
	}
	if c.MaxLevel == 0 {
		c.MaxLevel = 4
	}
	if c.DRAMBudget <= 0 {
		c.DRAMBudget = 4096
	}
	if c.Profile == (Profile{}) {
		c.Profile = DefaultProfile()
	}
	return c
}

// ChaosReport is the outcome of a soak run. Every field is a pure
// function of the seed, so two runs with the same config produce
// identical reports (the bit-reproducibility contract).
type ChaosReport struct {
	Seed        int64
	Steps       int // steps attempted
	Committed   int // steps that persisted successfully
	CutsArmed   int // torn power cuts armed
	Crashes     int // power-loss crashes taken (cuts that fired)
	RotEvents   int
	BitsFlipped int

	Restores         int // successful restores after a crash
	Fallbacks        int // restores that walked past the newest version
	Failovers        int // restores that needed the remote replica
	ValidateFailures int // mid-run validation failures treated as crashes

	SyncFailures int // replica frames abandoned after retries
	Link         cluster.LossyStats

	ScrubPasses       int
	ScrubCorrupt      int // CRC-bad lines found by scrub
	ScrubRepaired     int // lines repaired from the replica
	ScrubRemapped     int // worn-out lines remapped onto spares
	ScrubUnrepairable int // lines scrub could not heal
	StuckWrites       uint64
	TornWrites        uint64
	TornLinesDropped  uint64

	DegradedReplicas int // replicas lagging their primary at run end

	FinalStep   uint64 // committed version number at run end
	FinalLeaves int
	Digest      uint64 // FNV-64a over the committed-version digest history
}

// String renders the report as a stable, diffable summary.
func (r ChaosReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos seed=%d steps=%d committed=%d\n", r.Seed, r.Steps, r.Committed)
	fmt.Fprintf(&b, "  cuts: armed=%d fired=%d torn_writes=%d torn_lines_dropped=%d\n",
		r.CutsArmed, r.Crashes, r.TornWrites, r.TornLinesDropped)
	fmt.Fprintf(&b, "  rot: events=%d bits=%d  stuck_writes=%d\n", r.RotEvents, r.BitsFlipped, r.StuckWrites)
	fmt.Fprintf(&b, "  recovery: restores=%d fallbacks=%d failovers=%d validate_failures=%d\n",
		r.Restores, r.Fallbacks, r.Failovers, r.ValidateFailures)
	fmt.Fprintf(&b, "  scrub: passes=%d corrupt=%d repaired=%d remapped=%d unrepairable=%d\n",
		r.ScrubPasses, r.ScrubCorrupt, r.ScrubRepaired, r.ScrubRemapped, r.ScrubUnrepairable)
	fmt.Fprintf(&b, "  replica: frames=%d delivered=%d drops=%d corrupts=%d sync_failures=%d degraded=%d\n",
		r.Link.Frames, r.Link.Delivered, r.Link.Drops, r.Link.Corrupts, r.SyncFailures, r.DegradedReplicas)
	fmt.Fprintf(&b, "  final: step=%d leaves=%d digest=%016x\n", r.FinalStep, r.FinalLeaves, r.Digest)
	return b.String()
}

// Run executes the chaos soak: the droplet workload steps and persists
// under randomly injected torn power cuts, bit-rot, wear-out, and lossy
// replica syncs; every crash is recovered through the full chain
// (pre-restore scrub when the replica is commit-fresh, multi-version
// fallback restore, replica failover) and the recovered state is checked
// against the history of committed versions. An error means the recovery
// guarantee was violated — a corrupt state was accepted or a recoverable
// run was lost.
func Run(cfg ChaosConfig) (ChaosReport, error) {
	cfg = cfg.withDefaults()
	rep := ChaosReport{Seed: cfg.Seed, Steps: cfg.Steps}

	in := NewInjector(cfg.Seed, cfg.Profile)
	nv := nvbm.New(nvbm.NVBM, 0)
	nv.EnableMediaTracking()
	nv.SetWearLimit(cfg.Profile.WearLimit)
	nv.SetSpareLines(cfg.Profile.SpareLines)

	mkConfig := func(dev *nvbm.Device) core.Config {
		return core.Config{
			NVBMDevice:          dev,
			DRAMDevice:          nvbm.New(nvbm.DRAM, 0),
			DRAMBudgetOctants:   cfg.DRAMBudget,
			Seed:                cfg.Seed,
			RetainVersions:      2,
			VerifyRestore:       true,
			CacheCommittedReads: cfg.CacheCommittedReads,
		}
	}
	tree := core.Create(mkConfig(nv))
	d := sim.NewDroplet(sim.DropletConfig{Steps: cfg.Steps + 2})
	tree.SetFeatures(d.Feature(1))

	srv := startChaosServing(cfg.QueryReaders, tree)
	defer srv.stop(cfg.QueryStats)

	link := cluster.NewLossyNetwork(cluster.Gemini(), cfg.Profile.DropProb, cfg.Profile.CorruptProb, cfg.Seed+101)
	mgr := recovery.NewReplicaManager(2, 0, cluster.Gemini())
	mgr.SetLink(link)

	// history records the digest of every version ever committed; a
	// recovered state must match one of them.
	history := map[uint64]bool{commitDigest(tree): true}
	cfg.Recorder.Record(telemetry.FlightEvent{Kind: "commit", Step: tree.CommittedStep(), Value: commitDigest(tree)})
	histHash := fnv.New64a()
	addHistory := func(dg uint64) {
		history[dg] = true
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], dg)
		histHash.Write(b[:])
	}
	replicaStep := uint64(0) // committed step the replica mirrors
	haveReplica := false

	// recoverTree runs the recovery chain after a crash (or a failed
	// validation) at workload step s.
	recoverTree := func(s int) error {
		// Exclude reader batches for the whole recovery: the catalog is
		// retired (draining every pin) before the tree is rebuilt, and
		// scrub rewrites device bytes in place.
		srv.lockFaults()
		defer srv.unlockFaults()
		srv.retire()
		nv.RestorePower()
		// Pre-restore scrub: when the replica mirrors the device's
		// current committed version, heal media damage before validation
		// so restore rejects as little as possible.
		if haveReplica {
			if devStep, err := core.CommittedStepOf(nv); err == nil && devStep == replicaStep {
				accumulateScrub(&rep, cfg.Recorder, scrubFromReplica(nv, mgr))
			}
		}
		t, rrep, err := core.RestoreWithReport(mkConfig(nv))
		if err != nil && haveReplica {
			// The surviving device has no intact version: fail over to
			// the replica image on the peer node.
			img, _, rerr := mgr.Recover(0)
			if rerr == nil {
				if t2, rrep2, err2 := core.RestoreWithReport(mkConfig(img)); err2 == nil {
					rep.StuckWrites += nv.FaultStats().StuckWrites
					rep.TornWrites += nv.FaultStats().TornWrites
					rep.TornLinesDropped += nv.FaultStats().TornLinesDropped
					nv, t, rrep, err = img, t2, rrep2, nil
					rep.Failovers++
					replicaStep = t.CommittedStep()
				}
			}
		}
		if err != nil {
			return fmt.Errorf("step %d: unrecoverable: %w", s, err)
		}
		rep.Restores++
		if rrep.Fallbacks > 0 {
			rep.Fallbacks++
		}
		dg := commitDigest(t)
		cfg.Recorder.Record(telemetry.FlightEvent{Kind: "restore", Step: t.CommittedStep(), Value: dg,
			Detail: fmt.Sprintf("fallbacks=%d", rrep.Fallbacks)})
		if !history[dg] {
			return fmt.Errorf("step %d: restored version (step %d) was never committed", s, rrep.ChosenStep)
		}
		tree = t
		tree.SetFeatures(d.Feature(s + 1))
		srv.rebind(tree)
		return nil
	}

	for s := 1; s <= cfg.Steps; s++ {
		in.ArmTornCut(nv)
		crashed := false
		pending := uint64(0)
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != nvbm.ErrPowerLost {
						// Corruption-driven panics (walking a rotted
						// pointer) are crashes too; recovery must handle
						// them identically.
						rep.ValidateFailures++
					} else {
						rep.Crashes++
					}
					crashed = true
				}
			}()
			sim.Step(tree, d, s, cfg.MaxLevel)
			tree.SetFeatures(d.Feature(s + 1))
			// The version about to be committed becomes legitimate the
			// instant Persist's root store lands; record its digest
			// before attempting, since a crash later in Persist (GC,
			// retarget) leaves it durably committed.
			pending = workingDigest(tree)
			cfg.Recorder.Record(telemetry.FlightEvent{Kind: "commit_attempt", Step: tree.Step(), Value: pending})
			tree.Persist()
		}()
		if crashed {
			cfg.Recorder.Record(telemetry.FlightEvent{Kind: "crash", Step: uint64(s)})
			if pending != 0 {
				addHistory(pending)
			}
			if err := recoverTree(s); err != nil {
				finalize(&rep, in, link, mgr, nv, tree)
				return rep, err
			}
			continue
		}
		nv.RestorePower() // disarm an unspent countdown
		rep.Committed++
		addHistory(commitDigest(tree))
		cfg.Recorder.Record(telemetry.FlightEvent{Kind: "commit", Step: tree.CommittedStep(), Value: commitDigest(tree)})
		srv.publish()

		if err := mgr.Sync(0, nv); err != nil {
			rep.SyncFailures++
		} else {
			haveReplica = true
			replicaStep = tree.CommittedStep()
		}
		// Rot and scrub mutate device bytes in place; exclude reader
		// batches so a double pass never straddles a flip or a repair.
		srv.lockFaults()
		rotBefore := in.BitsFlipped
		in.InjectRot(nv)
		if flipped := in.BitsFlipped - rotBefore; flipped > 0 {
			cfg.Recorder.Record(telemetry.FlightEvent{Kind: "inject_rot", Step: uint64(s), Value: uint64(flipped)})
		}
		if haveReplica && replicaStep == tree.CommittedStep() {
			accumulateScrub(&rep, cfg.Recorder, scrubFromReplica(nv, mgr))
		}
		srv.unlockFaults()
		if err := safeValidate(tree); err != nil {
			rep.ValidateFailures++
			if rerr := recoverTree(s); rerr != nil {
				finalize(&rep, in, link, mgr, nv, tree)
				return rep, rerr
			}
		}
	}
	finalize(&rep, in, link, mgr, nv, tree)
	rep.Digest = histHash.Sum64()
	srv.stop(cfg.QueryStats)
	if n := srv.mismatchCount(); n > 0 {
		return rep, fmt.Errorf("snapshot immutability violated: %d double-pass mismatches on pinned versions", n)
	}
	return rep, nil
}

// scrubFromReplica runs one scrub pass on dev, repairing corrupt lines
// from the (commit-fresh) replica image.
func scrubFromReplica(dev *nvbm.Device, mgr *recovery.ReplicaManager) nvbm.ScrubReport {
	img := mgr.ReplicaImage(0)
	if img == nil {
		return dev.Scrub(nil)
	}
	b := img.Bytes()
	return dev.Scrub(func(off int, p []byte) bool {
		if off < 0 || off+len(p) > len(b) {
			return false
		}
		copy(p, b[off:off+len(p)])
		return true
	})
}

func accumulateScrub(rep *ChaosReport, fr *telemetry.FlightRecorder, sr nvbm.ScrubReport) {
	rep.ScrubPasses++
	rep.ScrubCorrupt += sr.Corrupt
	rep.ScrubRepaired += sr.Repaired
	rep.ScrubRemapped += sr.Remapped
	rep.ScrubUnrepairable += sr.Unrepairable
	fr.Record(telemetry.FlightEvent{Kind: "scrub", Value: uint64(sr.Repaired),
		Detail: fmt.Sprintf("corrupt=%d repaired=%d remapped=%d unrepairable=%d",
			sr.Corrupt, sr.Repaired, sr.Remapped, sr.Unrepairable)})
}

func finalize(rep *ChaosReport, in *Injector, link *cluster.LossyNetwork,
	mgr *recovery.ReplicaManager, nv *nvbm.Device, tree *core.Tree) {
	rep.CutsArmed = int(in.CutsArmed)
	rep.RotEvents = int(in.RotEvents)
	rep.BitsFlipped = int(in.BitsFlipped)
	rep.Link = link.Stats()
	fs := nv.FaultStats()
	rep.StuckWrites += fs.StuckWrites
	rep.TornWrites += fs.TornWrites
	rep.TornLinesDropped += fs.TornLinesDropped
	for _, st := range mgr.Report() {
		if st.Degraded {
			rep.DegradedReplicas++
		}
	}
	rep.FinalStep = tree.CommittedStep()
	rep.FinalLeaves = tree.LeafCount()
}

// commitDigest hashes the committed version's full contents (codes and
// data in Z-order) into one word; equal digests identify equal versions.
func commitDigest(t *core.Tree) uint64 {
	h := fnv.New64a()
	digestWalk(h, t.ForEachCommittedNode)
	return h.Sum64()
}

// workingDigest hashes the working version the same way; just before
// Persist it equals what commitDigest will return after (Persist moves
// octants but never changes codes or data).
func workingDigest(t *core.Tree) uint64 {
	h := fnv.New64a()
	digestWalk(h, t.ForEachNode)
	return h.Sum64()
}

func digestWalk(h interface{ Write([]byte) (int, error) }, walk func(func(core.Ref, *core.Octant) bool)) {
	var b [8]byte
	walk(func(_ core.Ref, o *core.Octant) bool {
		binary.LittleEndian.PutUint64(b[:], uint64(o.Code))
		h.Write(b[:])
		for _, v := range o.Data {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			h.Write(b[:])
		}
		return true
	})
}

// safeValidate converts validation panics (walking corrupted refs) into
// errors so the harness can route them through crash recovery.
func safeValidate(t *core.Tree) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("validate panicked: %v", r)
		}
	}()
	return t.Validate()
}
