package pagefile

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"pmoctree/internal/nvbm"
)

func TestStoreAllocWriteRead(t *testing.T) {
	s := NewStore(nvbm.New(nvbm.NVBM, 0))
	p0 := s.AllocPage()
	p1 := s.AllocPage()
	if p0 == p1 {
		t.Fatal("duplicate page ids")
	}
	s.WritePage(p0, []byte("alpha"))
	s.WritePage(p1, []byte("beta"))
	buf := make([]byte, 5)
	s.ReadPage(p0, buf)
	if string(buf) != "alpha" {
		t.Errorf("page 0 = %q", buf)
	}
	s.ReadPage(p1, buf[:4])
	if string(buf[:4]) != "beta" {
		t.Errorf("page 1 = %q", buf[:4])
	}
	if s.Pages() != 2 {
		t.Errorf("Pages = %d", s.Pages())
	}
}

func TestStoreFreeReuse(t *testing.T) {
	s := NewStore(nvbm.New(nvbm.NVBM, 0))
	p := s.AllocPage()
	s.FreePage(p)
	if got := s.AllocPage(); got != p {
		t.Errorf("freed page not reused: got %d want %d", got, p)
	}
}

func TestStoreChargesFullPages(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	s := NewStore(dev)
	p := s.AllocPage()
	before := dev.Stats()
	s.WritePage(p, []byte{1}) // one byte...
	delta := dev.Stats().Sub(before)
	if delta.WriteBytes != PageSize { // ...but a whole page moves
		t.Errorf("wrote %d bytes, want %d", delta.WriteBytes, PageSize)
	}
	before = dev.Stats()
	s.ReadPage(p, make([]byte, 1))
	delta = dev.Stats().Sub(before)
	if delta.ReadBytes != PageSize {
		t.Errorf("read %d bytes, want %d", delta.ReadBytes, PageSize)
	}
}

func TestStorePanics(t *testing.T) {
	s := NewStore(nvbm.New(nvbm.NVBM, 0))
	p := s.AllocPage()
	for _, fn := range []func(){
		func() { s.WritePage(p+1, nil) },
		func() { s.ReadPage(-1, nil) },
		func() { s.WritePage(p, make([]byte, PageSize+1)) },
		func() { s.FreePage(99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	w := NewWriter(dev)
	payload := bytes.Repeat([]byte("0123456789abcdef"), 1000) // 16000 bytes, ~4 pages
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(dev)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != len(payload) {
		t.Errorf("Len = %d, want %d", r.Len(), len(payload))
	}
	got, err := io.ReadAll(r)
	if err != nil && !IsEOF(err) {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(payload))
	}
}

func TestWriterEmptyStream(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	w := NewWriter(dev)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(dev)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Errorf("empty stream Len = %d", r.Len())
	}
	if _, err := r.Read(make([]byte, 8)); !IsEOF(err) {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReaderOnEmptyDevice(t *testing.T) {
	if _, err := NewReader(nvbm.New(nvbm.NVBM, 0)); err == nil {
		t.Error("expected error on deviceless stream")
	}
}

func TestWriterSmallWrites(t *testing.T) {
	dev := nvbm.New(nvbm.NVBM, 0)
	w := NewWriter(dev)
	var want bytes.Buffer
	for i := 0; i < 5000; i++ {
		b := []byte{byte(i), byte(i >> 8), byte(i % 7)}
		w.Write(b)
		want.Write(b)
	}
	w.Close()
	r, err := NewReader(dev)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, want.Len())
	if _, err := io.ReadFull(r, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("fragmented writes corrupted the stream")
	}
}

// Property: any payload round-trips through the page stream.
func TestQuickStreamIdentity(t *testing.T) {
	f := func(payload []byte) bool {
		dev := nvbm.New(nvbm.NVBM, 0)
		w := NewWriter(dev)
		w.Write(payload)
		w.Close()
		r, err := NewReader(dev)
		if err != nil {
			return false
		}
		got := make([]byte, len(payload))
		if len(payload) > 0 {
			if _, err := io.ReadFull(r, got); err != nil {
				return false
			}
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: distinct pages never interfere.
func TestQuickPageIsolation(t *testing.T) {
	f := func(vals []byte) bool {
		if len(vals) > 32 {
			vals = vals[:32]
		}
		s := NewStore(nvbm.New(nvbm.NVBM, 0))
		ids := make([]int, len(vals))
		for i, v := range vals {
			ids[i] = s.AllocPage()
			s.WritePage(ids[i], []byte{v})
		}
		for i, v := range vals {
			b := make([]byte, 1)
			s.ReadPage(ids[i], b)
			if b[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
