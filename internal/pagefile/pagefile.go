// Package pagefile provides page-granularity storage on an emulated memory
// device, modeling access through a file-system interface.
//
// The paper's two baselines both pay this cost: the in-core octree writes
// whole-tree snapshot files through POSIX I/O, and the out-of-core Etree
// stores octants in 4 KiB pages found via a B-tree index. Even when the
// backing medium is NVBM, a file-system interface transfers whole pages —
// "the octants of out-of-core-octree are not byte-addressable; its minimum
// I/O unit is a page (4KB)" (§5.4) — which is exactly the waste
// byte-addressable PM-octree avoids.
package pagefile

import (
	"fmt"

	"pmoctree/internal/nvbm"
)

// PageSize is the transfer unit of the emulated file system.
const PageSize = 4096

// Store is a page-addressed block store over a memory device. Page ids are
// dense and 0-based.
type Store struct {
	dev    *nvbm.Device
	npages int
	free   []int
}

// NewStore creates an empty page store over dev.
func NewStore(dev *nvbm.Device) *Store {
	return &Store{dev: dev}
}

// AllocPage allocates a page and returns its id. Contents are undefined
// until written.
func (s *Store) AllocPage() int {
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		return id
	}
	id := s.npages
	s.npages++
	if need := s.npages * PageSize; need > s.dev.Size() {
		newSize := s.dev.Size() * 2
		if newSize < need {
			newSize = need
		}
		s.dev.Grow(newSize)
	}
	return id
}

// FreePage returns a page to the store for reuse.
func (s *Store) FreePage(id int) {
	s.checkID(id)
	s.free = append(s.free, id)
}

// WritePage writes p (at most PageSize bytes) to page id. A full page
// transfer is charged regardless of len(p): that is the point of the
// file-system interface.
func (s *Store) WritePage(id int, p []byte) {
	s.checkID(id)
	if len(p) > PageSize {
		panic(fmt.Sprintf("pagefile: %d bytes exceed page size", len(p)))
	}
	buf := make([]byte, PageSize)
	copy(buf, p)
	s.dev.WriteAt(id*PageSize, buf)
}

// ReadPage reads page id into p (at most PageSize bytes). A full page
// transfer is charged.
func (s *Store) ReadPage(id int, p []byte) {
	s.checkID(id)
	if len(p) > PageSize {
		p = p[:PageSize]
	}
	buf := make([]byte, PageSize)
	s.dev.ReadAt(id*PageSize, buf)
	copy(p, buf)
}

// Pages returns the number of pages ever allocated.
func (s *Store) Pages() int { return s.npages }

// Device returns the backing device (for statistics).
func (s *Store) Device() *nvbm.Device { return s.dev }

func (s *Store) checkID(id int) {
	if id < 0 || id >= s.npages {
		panic(fmt.Sprintf("pagefile: page id %d out of range [0,%d)", id, s.npages))
	}
}

// Writer streams a byte sequence into consecutive pages of a device,
// modeling sequential file writes (the snapshot path of the in-core
// baseline). It starts at device offset 0 and records the logical length
// in a trailer-free header page written on Close.
type Writer struct {
	dev  *nvbm.Device
	buf  []byte
	page int // next data page (page 0 is the header)
	n    int // logical bytes written
}

// headerPages reserves page 0 for the stream length.
const headerPages = 1

// NewWriter starts a sequential page stream on dev, overwriting previous
// contents.
func NewWriter(dev *nvbm.Device) *Writer {
	return &Writer{dev: dev, page: headerPages}
}

// Write buffers p, flushing full pages as they fill. It never fails; the
// device grows as needed.
func (w *Writer) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	w.n += len(p)
	for len(w.buf) >= PageSize {
		w.flushPage(w.buf[:PageSize])
		w.buf = w.buf[PageSize:]
	}
	return len(p), nil
}

// Close flushes the final partial page and the header. The Writer must not
// be used afterwards.
func (w *Writer) Close() error {
	if len(w.buf) > 0 {
		w.flushPage(w.buf)
		w.buf = nil
	}
	if need := PageSize; need > w.dev.Size() {
		w.dev.Grow(need)
	}
	w.dev.WriteU64(0, uint64(w.n))
	return nil
}

func (w *Writer) flushPage(p []byte) {
	off := w.page * PageSize
	if need := off + PageSize; need > w.dev.Size() {
		newSize := w.dev.Size() * 2
		if newSize < need {
			newSize = need
		}
		w.dev.Grow(newSize)
	}
	buf := make([]byte, PageSize)
	copy(buf, p)
	w.dev.WriteAt(off, buf)
	w.page++
}

// Reader streams back a sequence written by Writer, charging page-size
// reads (the snapshot restore path).
type Reader struct {
	dev    *nvbm.Device
	remain int
	page   int
	buf    []byte
}

// NewReader opens the page stream on dev.
func NewReader(dev *nvbm.Device) (*Reader, error) {
	if dev.Size() < PageSize {
		return nil, fmt.Errorf("pagefile: device holds no stream")
	}
	n := dev.ReadU64(0)
	return &Reader{dev: dev, remain: int(n), page: headerPages}, nil
}

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return r.remain + len(r.buf) }

// Read fills p from the stream.
func (r *Reader) Read(p []byte) (int, error) {
	total := 0
	for len(p) > 0 && (r.remain > 0 || len(r.buf) > 0) {
		if len(r.buf) == 0 {
			page := make([]byte, PageSize)
			r.dev.ReadAt(r.page*PageSize, page)
			r.page++
			if r.remain < PageSize {
				page = page[:r.remain]
			}
			r.remain -= len(page)
			r.buf = page
		}
		n := copy(p, r.buf)
		r.buf = r.buf[n:]
		p = p[n:]
		total += n
	}
	if total == 0 {
		return 0, errEOF
	}
	return total, nil
}

var errEOF = fmt.Errorf("pagefile: EOF")

// IsEOF reports whether err is the stream-end error returned by Read.
func IsEOF(err error) bool { return err == errEOF }
