package pmoctree_test

import (
	"fmt"

	"pmoctree"
)

// The canonical lifecycle: create, mesh, persist, crash, restore.
func Example() {
	nv := pmoctree.NewNVBM()
	dram := pmoctree.NewDRAM()
	tree := pmoctree.Create(pmoctree.Config{NVBMDevice: nv, DRAMDevice: dram})

	tree.RefineWhere(func(c pmoctree.Code) bool { return c.Level() < 2 }, 2)
	tree.Persist()

	dram.Crash() // power failure: DRAM gone, NVBM intact
	restored, _ := pmoctree.Restore(pmoctree.Config{NVBMDevice: nv})
	fmt.Println("elements after restore:", restored.LeafCount())
	// Output: elements after restore: 64
}

// Structural sharing between versions: an update copies only the path
// from the changed leaf to the root.
func ExampleTree_VersionStats() {
	tree := pmoctree.Create(pmoctree.Config{})
	tree.RefineWhere(func(c pmoctree.Code) bool { return c.Level() < 2 }, 2)
	tree.Persist()

	target := tree.LeafCodes()[0]
	tree.UpdateAt(target, func(d *[pmoctree.DataWords]float64) { d[0] = 1 })

	vs := tree.VersionStats()
	fmt.Println("octants copied:", vs.CurOctants-vs.SharedOctants)
	// Output: octants copied: 3
}

// Mesh extraction deduplicates vertices and classifies hanging nodes.
func ExampleExtract() {
	tree := pmoctree.Create(pmoctree.Config{})
	tree.RefineWhere(func(c pmoctree.Code) bool { return c.Level() < 1 }, 1)

	hm := pmoctree.Extract(tree.ForEachLeaf)
	fmt.Println("elements:", len(hm.Elements), "vertices:", len(hm.Vertices))
	// Output: elements: 8 vertices: 27
}

// A Poisson solve on the adaptive mesh, written back into the octree.
func ExampleBuildPoisson() {
	tree := pmoctree.Create(pmoctree.Config{})
	tree.RefineWhere(func(c pmoctree.Code) bool { return c.Level() < 2 }, 2)
	tree.Balance()

	sys, _ := pmoctree.BuildPoisson(tree.LeafCodes())
	b := make([]float64, sys.N())
	x := make([]float64, sys.N())
	for i := range b {
		b[i] = 1 // uniform source, Dirichlet walls
	}
	res, _ := sys.Solve(b, x, pmoctree.SolverOptions{})
	fmt.Println("converged:", res.Converged)
	// Output: converged: true
}
