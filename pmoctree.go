// Package pmoctree is a Go implementation of PM-octree — the persistent,
// multi-version octree for non-volatile byte-addressable memory (NVBM)
// described in "Large-Scale Adaptive Mesh Simulations Through Non-Volatile
// Byte-Addressable Memory" (SC '17) — together with everything needed to
// reproduce the paper's evaluation: an NVBM emulator, the in-core and
// out-of-core (Etree-style) baselines, the three motivating AMR workloads
// (droplet ejection, drop impact, nucleate boiling), mesh extraction with
// VTK export, a Poisson/projection flow solver, and a distributed-scaling
// simulator.
//
// # Quick start
//
//	tree := pmoctree.Create(pmoctree.Config{})
//	tree.RefineWhere(myCriterion, 6)     // meshing
//	tree.Persist()                       // pm_persistent: commit V(i)
//	// ... crash ...
//	tree, err := pmoctree.Restore(pmoctree.Config{NVBMDevice: survivingDevice})
//
// The working version V(i) shares all unmodified octants with the last
// committed version V(i-1); every mutation is copy-on-write, so a
// consistent version always exists in NVBM and restart is
// near-instantaneous (§3.4 of the paper).
//
// Layout management is automatic: hot subtrees (identified by
// feature-directed sampling over the functions you register with
// SetFeatures) live in DRAM (the C0 tree), cold subtrees in NVBM (C1),
// and the split adapts as the access pattern moves (§3.3).
package pmoctree

import (
	"pmoctree/internal/core"
	"pmoctree/internal/etree"
	"pmoctree/internal/fluid"
	"pmoctree/internal/mesh"
	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/octree"
	"pmoctree/internal/parallel"
	"pmoctree/internal/sim"
	"pmoctree/internal/solver"
)

// Tree is a PM-octree (the paper's contribution). See Create and Restore.
type Tree = core.Tree

// Config parameterizes a PM-octree: DRAM budget for the C0 tree,
// merge/GC thresholds, the transformation threshold T_transform, sampling
// size N_sample, and the backing devices.
type Config = core.Config

// Octant is the decoded view of one octree node.
type Octant = core.Octant

// Ref is a region-tagged persistent reference to an octant.
type Ref = core.Ref

// Feature is an application-level predicate pre-executed by
// feature-directed sampling to find hot subtrees (§3.3).
type Feature = core.Feature

// OpStats counts structural operations (refines, COW copies, merges, GC
// passes, layout transformations).
type OpStats = core.OpStats

// VersionStats describes structural sharing between the working and
// committed versions (Figure 3's metrics).
type VersionStats = core.VersionStats

// DataWords is the number of float64 field values carried per octant.
const DataWords = core.DataWords

// Create builds a new PM-octree and commits its root as the first
// persistent version (pm_create).
func Create(cfg Config) *Tree { return core.Create(cfg) }

// Restore reopens a PM-octree from a surviving NVBM device (pm_restore).
// Recovery returns the last committed version; octants reachable only
// from the lost working version are reclaimed by the next GC.
func Restore(cfg Config) (*Tree, error) { return core.Restore(cfg) }

// Code is a 3-D locational code: level plus Morton-interleaved anchor.
type Code = morton.Code

// Root is the locational code of the root octant (the unit cube).
const Root = morton.Root

// MaxLevel is the deepest supported refinement level.
const MaxLevel = morton.MaxLevel

// Encode builds the code for the octant at (x, y, z) on the 2^level grid.
func Encode(x, y, z uint32, level uint8) Code { return morton.Encode(x, y, z, level) }

// Device is an emulated memory device (DRAM or NVBM) with deterministic
// latency accounting, wear tracking, and crash/persistence semantics.
type Device = nvbm.Device

// DeviceStats is a snapshot of a device's access counters.
type DeviceStats = nvbm.Stats

// NewNVBM creates an emulated NVBM device (Table 2 latencies: 100 ns
// reads, 150 ns writes).
func NewNVBM() *Device { return nvbm.New(nvbm.NVBM, 0) }

// NewDRAM creates an emulated DRAM device (60 ns reads and writes).
func NewDRAM() *Device { return nvbm.New(nvbm.DRAM, 0) }

// OpenDeviceFile reopens an NVBM device image written by
// Device.PersistFile — the restart-from-disk path.
func OpenDeviceFile(path string) (*Device, error) { return nvbm.OpenFile(path) }

// AdaptiveMesh is the operation set shared by all three octree
// implementations: PM-octree, the in-core baseline, and the out-of-core
// baseline.
type AdaptiveMesh = sim.Mesh

// Droplet is the droplet-ejection workload of §5.1: an analytic moving
// liquid interface (jet, pinch-off, capillary breakup) that drives
// adaptive refinement.
type Droplet = sim.Droplet

// DropletConfig parameterizes the workload, including the number of
// simultaneous jets (a printhead) used for weak scaling.
type DropletConfig = sim.DropletConfig

// NewDroplet builds the workload.
func NewDroplet(cfg DropletConfig) *Droplet { return sim.NewDroplet(cfg) }

// Workload is a time-dependent implicit interface driving adaptive
// meshing: the surface is the zero level set of PhiAtStep. The three
// workloads the paper's introduction motivates — droplet ejection, drop
// impact, and nucleate boiling — all implement it.
type Workload = sim.Field

// DropImpact is the drop-impact-on-a-solid-surface workload: free fall,
// lamella spreading with a crown rim, relaxation.
type DropImpact = sim.DropImpact

// ImpactConfig parameterizes the drop-impact workload.
type ImpactConfig = sim.ImpactConfig

// NewDropImpact builds the workload.
func NewDropImpact(cfg ImpactConfig) *DropImpact { return sim.NewDropImpact(cfg) }

// Boiling is the rapid-boiling workload: vapor bubbles nucleating on a
// heated floor under a liquid pool, growing, detaching and rising.
type Boiling = sim.Boiling

// BoilingConfig parameterizes the boiling workload.
type BoilingConfig = sim.BoilingConfig

// NewBoiling builds the workload.
func NewBoiling(cfg BoilingConfig) *Boiling { return sim.NewBoiling(cfg) }

// WorkloadFeature returns the feature-directed-sampling predicate for a
// workload's next step; hand it to Tree.SetFeatures before Persist.
func WorkloadFeature(w Workload, nextStep int) core.Feature { return sim.FeatureOf(w, nextStep) }

// StepCounts reports what one AMR step did.
type StepCounts = sim.StepCounts

// Step advances any AdaptiveMesh through one AMR time step of the
// workload: Refine, Coarsen, Balance, Solve.
func Step(m AdaptiveMesh, w Workload, step int, maxLevel uint8) StepCounts {
	return sim.StepField(m, w, step, maxLevel)
}

// StepWorkers is Step with the predicate and leaf-solve evaluation fanned
// out over a deterministic worker pool. Results are bit-identical to Step
// for every worker count; workers <= 0 means GOMAXPROCS.
func StepWorkers(m AdaptiveMesh, w Workload, step int, maxLevel uint8, workers int) StepCounts {
	return sim.StepWorkers(m, w, step, maxLevel, workers)
}

// StepPool is StepWorkers with an explicit (possibly shared, possibly
// instrumented) pool. A nil pool runs serially.
func StepPool(m AdaptiveMesh, w Workload, step int, maxLevel uint8, pool *WorkerPool) StepCounts {
	return sim.StepFieldPool(m, w, step, maxLevel, pool)
}

// ConstructInitialStep is the scenario start-up fast path: on a fresh
// PM-octree it builds the workload's step-s mesh — leaf set, 2:1 balance,
// and solved fields — in one bulk construction instead of thousands of
// incremental splits, bit-identical to StepPool of the same step. ok is
// false (and the mesh untouched) when the mesh does not support bulk
// construction or is not fresh; fall back to StepPool then.
func ConstructInitialStep(m AdaptiveMesh, w Workload, step int, maxLevel uint8, pool *WorkerPool) (StepCounts, bool) {
	return sim.ConstructInitial(m, w, step, maxLevel, pool)
}

// WorkerPool is the deterministic bounded worker pool behind every
// parallel path (solver sweeps, advection, AMR predicate evaluation). A
// nil *WorkerPool runs inline on the calling goroutine; reductions are
// blocked so results do not depend on the worker count.
type WorkerPool = parallel.Pool

// NewWorkerPool builds a pool with the given worker count (<= 0 means
// GOMAXPROCS). Share one pool across subsystems via their SetPool methods.
func NewWorkerPool(workers int) *WorkerPool { return parallel.New(workers) }

// InCoreMesh is the Gerris-style baseline: an ephemeral pointer octree in
// DRAM that persists by writing whole snapshot files.
type InCoreMesh = sim.InCore

// NewInCoreMesh builds the in-core baseline; snapshotDev (may be nil)
// receives periodic snapshot files.
func NewInCoreMesh(snapshotDev *Device) *InCoreMesh { return sim.NewInCore(snapshotDev) }

// OutOfCoreMesh is the Etree-style baseline: a paged linear octree with a
// B-tree index, accessed through a file-system interface.
type OutOfCoreMesh = etree.Tree

// NewOutOfCoreMesh builds the out-of-core baseline on dev.
func NewOutOfCoreMesh(dev *Device) *OutOfCoreMesh { return etree.New(dev) }

// OpenOutOfCoreMesh reopens an out-of-core mesh after a restart.
func OpenOutOfCoreMesh(dev *Device) (*OutOfCoreMesh, error) { return etree.Open(dev) }

// PointerOctree is the raw ephemeral octree underlying the in-core
// baseline, exposed for direct use.
type PointerOctree = octree.Tree

// NewPointerOctree builds an empty pointer octree.
func NewPointerOctree() *PointerOctree { return octree.New() }

// AutoTuner adjusts the C0 DRAM budget between steps from observed merge
// pressure and idle capacity — the paper's §6 future work.
type AutoTuner = core.AutoTuner

// NewAutoTuner returns the default tuning policy over [min, max] octants.
func NewAutoTuner(minBudget, maxBudget int) *AutoTuner {
	return core.NewAutoTuner(minBudget, maxBudget)
}

// PoissonSystem is the finite-volume Poisson operator assembled on a
// 2:1-balanced mesh snapshot — the pressure solver of a projection-method
// flow step.
type PoissonSystem = solver.System

// SolverOptions tunes the conjugate-gradient iteration.
type SolverOptions = solver.Options

// SolverResult reports a completed linear solve.
type SolverResult = solver.Result

// BuildPoisson assembles the operator from a tree's leaf codes, e.g.
// BuildPoisson(tree.LeafCodes()).
func BuildPoisson(leaves []Code) (*PoissonSystem, error) { return solver.Build(leaves) }

// FlowState is a Chorin projection-method incompressible flow field on a
// mesh snapshot: semi-Lagrangian advection, gravity, and a face-exact
// pressure projection per Step.
type FlowState = fluid.State

// NewFlowState builds a zero flow state over the system's cells.
func NewFlowState(sys *PoissonSystem) *FlowState { return fluid.NewState(sys) }

// HexMesh is an unstructured hexahedral mesh extracted from octree leaves
// (the Extract routine), with anchored/dangling node classification.
type HexMesh = mesh.Mesh

// Extract builds a HexMesh from any leaf iterator, e.g.
// Extract(tree.ForEachLeaf).
func Extract(leaves func(fn func(code Code, data [DataWords]float64) bool)) *HexMesh {
	return mesh.Extract(leaves)
}
