// Command meshstat inspects a persisted PM-octree region image (written
// by cmd/droplet -image or Device.PersistFile): it restores the committed
// version and reports the mesh structure, level histogram, and memory
// layout — demonstrating that a PM-octree is fully usable directly from
// its persistent image.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"pmoctree"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: meshstat <region-image>")
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	dev, err := pmoctree.OpenDeviceFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "meshstat: %v\n", err)
		os.Exit(1)
	}
	tree, err := pmoctree.Restore(pmoctree.Config{NVBMDevice: dev})
	if err != nil {
		fmt.Fprintf(os.Stderr, "meshstat: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("restored committed version of step %d\n", tree.Step()-1)
	if err := tree.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "meshstat: structural validation FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("structural validation: ok")

	hm := pmoctree.Extract(tree.ForEachLeaf)
	fmt.Printf("mesh: %d elements, %d vertices (%d anchored, %d dangling), volume %.6f\n",
		len(hm.Elements), len(hm.Vertices), hm.AnchoredCount(), hm.DanglingCount(), hm.Volume())

	hist := hm.LevelHistogram()
	var levels []int
	for l := range hist {
		levels = append(levels, int(l))
	}
	sort.Ints(levels)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "level\telements\tcell size")
	for _, l := range levels {
		fmt.Fprintf(w, "%d\t%d\t%.6f\n", l, hist[uint8(l)], 1/float64(uint64(1)<<l))
	}
	w.Flush()

	vs := tree.VersionStats()
	fmt.Printf("octants: %d; live bytes %d (%.0f per 1000 octants)\n",
		vs.CurOctants, vs.LiveBytes, vs.MemoryPerThousandOctants())
}
