// Command meshstat inspects a persisted PM-octree region image (written
// by cmd/droplet -image or Device.PersistFile): it restores the committed
// version and reports the mesh structure, level histogram, and memory
// layout — demonstrating that a PM-octree is fully usable directly from
// its persistent image. -json emits the same report as one machine-
// readable object.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"pmoctree"
	"pmoctree/internal/tile"
)

// report is the -json form of meshstat's output.
type report struct {
	Step            uint64         `json:"step"`
	Valid           bool           `json:"valid"`
	Elements        int            `json:"elements"`
	Vertices        int            `json:"vertices"`
	Anchored        int            `json:"anchored"`
	Dangling        int            `json:"dangling"`
	Volume          float64        `json:"volume"`
	LevelElements   map[string]int `json:"level_elements"`
	Octants         int            `json:"octants"`
	LiveBytes       int            `json:"live_bytes"`
	BytesPerKOctant float64        `json:"bytes_per_1000_octants"`

	// -tiles only: the Morton-ordered SoA tile image of the leaf fields.
	Tiles           int            `json:"tiles,omitempty"`
	TileSize        int            `json:"tile_size,omitempty"`
	TileOccupancy   float64        `json:"tile_occupancy,omitempty"`
	TileHistogram   map[string]int `json:"tile_histogram,omitempty"`
	TileGatherBytes uint64         `json:"tile_gather_bytes,omitempty"`
}

func main() {
	asJSON := flag.Bool("json", false, "emit one machine-readable JSON object instead of text")
	tiles := flag.Bool("tiles", false, "gather the tiled SoA leaf image and report tile count, occupancy histogram, and gather traffic")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: meshstat [-json] [-tiles] <region-image>")
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	dev, err := pmoctree.OpenDeviceFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "meshstat: %v\n", err)
		os.Exit(1)
	}
	tree, err := pmoctree.Restore(pmoctree.Config{NVBMDevice: dev})
	if err != nil {
		fmt.Fprintf(os.Stderr, "meshstat: %v\n", err)
		os.Exit(1)
	}

	rep := report{Step: tree.Step() - 1, Valid: true}
	if err := tree.Validate(); err != nil {
		if *asJSON {
			rep.Valid = false
			json.NewEncoder(os.Stdout).Encode(rep)
		}
		fmt.Fprintf(os.Stderr, "meshstat: structural validation FAILED: %v\n", err)
		os.Exit(1)
	}

	hm := pmoctree.Extract(tree.ForEachLeaf)
	hist := hm.LevelHistogram()
	vs := tree.VersionStats()
	rep.Elements = len(hm.Elements)
	rep.Vertices = len(hm.Vertices)
	rep.Anchored = hm.AnchoredCount()
	rep.Dangling = hm.DanglingCount()
	rep.Volume = hm.Volume()
	rep.LevelElements = map[string]int{}
	for l, n := range hist {
		rep.LevelElements[fmt.Sprint(l)] = n
	}
	rep.Octants = vs.CurOctants
	rep.LiveBytes = vs.LiveBytes
	rep.BytesPerKOctant = vs.MemoryPerThousandOctants()

	if *tiles {
		st := tree.LeafTiles()
		fp := tree.FastPath()
		rep.Tiles = st.Tiles()
		rep.TileSize = tile.Size
		rep.TileOccupancy = st.Occupancy()
		rep.TileHistogram = map[string]int{}
		for k, n := range st.OccupancyHistogram() {
			if n > 0 {
				rep.TileHistogram[fmt.Sprint(k)] = n
			}
		}
		rep.TileGatherBytes = fp.TileGatherBytes
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "meshstat: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("restored committed version of step %d\n", rep.Step)
	fmt.Println("structural validation: ok")
	fmt.Printf("mesh: %d elements, %d vertices (%d anchored, %d dangling), volume %.6f\n",
		rep.Elements, rep.Vertices, rep.Anchored, rep.Dangling, rep.Volume)

	var levels []int
	for l := range hist {
		levels = append(levels, int(l))
	}
	sort.Ints(levels)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "level\telements\tcell size")
	for _, l := range levels {
		fmt.Fprintf(w, "%d\t%d\t%.6f\n", l, hist[uint8(l)], 1/float64(uint64(1)<<l))
	}
	w.Flush()

	fmt.Printf("octants: %d; live bytes %d (%.0f per 1000 octants)\n",
		rep.Octants, rep.LiveBytes, rep.BytesPerKOctant)

	if *tiles {
		fmt.Printf("tiles: %d of %d cells (%.1f%% occupancy), gathered %d bytes\n",
			rep.Tiles, rep.TileSize, 100*rep.TileOccupancy, rep.TileGatherBytes)
		var occs []int
		for k := range rep.TileHistogram {
			var v int
			fmt.Sscan(k, &v)
			occs = append(occs, v)
		}
		sort.Ints(occs)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "cells/tile\ttiles")
		for _, k := range occs {
			fmt.Fprintf(tw, "%d\t%d\n", k, rep.TileHistogram[fmt.Sprint(k)])
		}
		tw.Flush()
	}
}
