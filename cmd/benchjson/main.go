// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, so CI can archive benchmark runs
// (BENCH_pr2.json) without a third-party parser. It understands the
// standard benchmark line format:
//
//	BenchmarkSolveParallel-8   3   401203100 ns/op   262144 cells   4 workers
//
// plus the goos/goarch/cpu/pkg header lines, which become metadata.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: N iterations plus every trailing
// value/unit metric pair (ns/op, B/op, custom ReportMetric units).
type Result struct {
	Name    string             `json:"name"`
	Package string             `json:"package,omitempty"`
	Iters   int64              `json:"iterations"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the whole run.
type Doc struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	doc := Doc{Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				r.Package = pkg
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine splits "BenchmarkX-8  N  v1 u1  v2 u2 ..." into a Result.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			break
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}
