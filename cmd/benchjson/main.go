// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, so CI can archive benchmark runs
// (BENCH_pr2.json, BENCH_pr4.json) without a third-party parser. It
// understands the standard benchmark line format:
//
//	BenchmarkSolveParallel-8   3   401203100 ns/op   262144 cells   4 workers
//
// plus the goos/goarch/cpu/pkg header lines, which become metadata.
//
// With -compare old.json new.json it instead acts as CI's regression
// gate: benchmarks present in both documents are matched by name (the
// -8 GOMAXPROCS suffix stripped, so runs from different machines
// compare) and the command exits 1 if any ns/op regressed by more than
// the -tolerance fraction (default 0.10).
//
// With -require-speedup "specs" doc.json it gates speedup RATIOS within a
// single document: each comma-separated spec "A/B>=1.3" demands
// ns/op(A) / ns/op(B) >= 1.3 — e.g. that the parallel tiled solve
// actually beats the serial reference layout by 30%, not merely that
// nothing regressed against history. Exit 1 when any spec fails.
//
// With -compare-quantiles baseline.json new.json it gates serving-latency
// SLOs instead: both files are `pmserve -loadgen` SLO documents (per-class
// latency quantiles), and the command exits 1 if any class's p99 in new
// exceeds baseline by more than the -tolerance fraction AND by more than
// -floor-ns absolute nanoseconds. The absolute floor keeps scheduler
// jitter on sub-millisecond quantiles from failing the gate: a p99 that
// moves from 80us to 130us is noise, from 8ms to 13ms is a regression.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line: N iterations plus every trailing
// value/unit metric pair (ns/op, B/op, custom ReportMetric units).
type Result struct {
	Name    string             `json:"name"`
	Package string             `json:"package,omitempty"`
	Iters   int64              `json:"iterations"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the whole run.
type Doc struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	comparePaths := flag.Bool("compare", false, "compare two benchjson documents (old.json new.json) instead of converting; exit 1 on ns/op regressions beyond -tolerance")
	compareQ := flag.Bool("compare-quantiles", false, "compare two pmserve -loadgen SLO documents (baseline.json new.json); exit 1 on p99 regressions beyond -tolerance and -floor-ns")
	requireSpeedup := flag.String("require-speedup", "", `comma-separated ratio gates "A/B>=1.3" evaluated against one document's ns/op values; exit 1 when any fails`)
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional increase before a comparison fails")
	floorNs := flag.Float64("floor-ns", 500_000, "absolute ns a quantile must additionally worsen by before -compare-quantiles fails (noise floor)")
	flag.Parse()

	if *comparePaths {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		regressed, err := compare(os.Stdout, flag.Arg(0), flag.Arg(1), *tolerance)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	if *requireSpeedup != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchjson: -require-speedup needs exactly one file: doc.json")
			os.Exit(2)
		}
		failed, err := checkSpeedups(os.Stdout, flag.Arg(0), *requireSpeedup)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	if *compareQ {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare-quantiles needs exactly two files: baseline.json new.json")
			os.Exit(2)
		}
		regressed, err := compareQuantiles(os.Stdout, flag.Arg(0), flag.Arg(1), *tolerance, *floorNs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	doc := Doc{Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				r.Package = pkg
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine splits "BenchmarkX-8  N  v1 u1  v2 u2 ..." into a Result.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			break
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}

// baseName strips the -N GOMAXPROCS suffix go test appends to benchmark
// names ("BenchmarkSolve-8" -> "BenchmarkSolve"), so documents recorded
// on machines with different processor counts still match up.
func baseName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func loadDoc(path string) (Doc, error) {
	var doc Doc
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// compare reports ns/op movement between two documents, returning true
// when any shared benchmark got slower by more than tolerance. New or
// vanished benchmarks are informational, never failures — a PR adding
// benchmarks must not fail its own gate.
func compare(w *os.File, oldPath, newPath string, tolerance float64) (regressed bool, err error) {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		return false, err
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		return false, err
	}
	oldNs := map[string]float64{}
	for _, r := range oldDoc.Results {
		if v, ok := r.Metrics["ns/op"]; ok && v > 0 {
			oldNs[baseName(r.Name)] = v
		}
	}
	matched := 0
	for _, r := range newDoc.Results {
		name := baseName(r.Name)
		newV, ok := r.Metrics["ns/op"]
		if !ok || newV <= 0 {
			continue
		}
		oldV, ok := oldNs[name]
		if !ok {
			fmt.Fprintf(w, "  new   %-40s %14.0f ns/op\n", name, newV)
			continue
		}
		matched++
		delete(oldNs, name)
		ratio := newV / oldV
		verdict := "ok    "
		if ratio > 1+tolerance {
			verdict = "SLOWER"
			regressed = true
		} else if ratio < 1-tolerance {
			verdict = "faster"
		}
		fmt.Fprintf(w, "  %s %-40s %14.0f -> %14.0f ns/op  (%+.1f%%)\n",
			verdict, name, oldV, newV, (ratio-1)*100)
	}
	for name, v := range oldNs {
		fmt.Fprintf(w, "  gone  %-40s %14.0f ns/op\n", name, v)
	}
	if matched == 0 {
		return false, fmt.Errorf("no benchmark appears in both %s and %s", oldPath, newPath)
	}
	if regressed {
		fmt.Fprintf(w, "benchjson: ns/op regression beyond %.0f%% tolerance\n", tolerance*100)
	}
	return regressed, nil
}

// speedupSpec is one parsed "A/B>=1.3" gate: ns/op(num)/ns/op(den) must
// reach min.
type speedupSpec struct {
	num, den string
	min      float64
}

// parseSpeedups splits a comma-separated spec list. Whitespace around
// names and operators is tolerated.
func parseSpeedups(specs string) ([]speedupSpec, error) {
	var out []speedupSpec
	for _, raw := range strings.Split(specs, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		parts := strings.SplitN(raw, ">=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("spec %q: want A/B>=ratio", raw)
		}
		names := strings.SplitN(parts[0], "/", 2)
		if len(names) != 2 {
			return nil, fmt.Errorf("spec %q: want A/B>=ratio", raw)
		}
		min, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil || min <= 0 {
			return nil, fmt.Errorf("spec %q: bad ratio %q", raw, parts[1])
		}
		out = append(out, speedupSpec{
			num: strings.TrimSpace(names[0]),
			den: strings.TrimSpace(names[1]),
			min: min,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no speedup specs given")
	}
	return out, nil
}

// checkSpeedups evaluates ratio gates against one document, returning
// true when any gate fails (or names a missing benchmark).
func checkSpeedups(w *os.File, path, specs string) (failed bool, err error) {
	gates, err := parseSpeedups(specs)
	if err != nil {
		return false, err
	}
	doc, err := loadDoc(path)
	if err != nil {
		return false, err
	}
	ns := map[string]float64{}
	for _, r := range doc.Results {
		if v, ok := r.Metrics["ns/op"]; ok && v > 0 {
			ns[baseName(r.Name)] = v
		}
	}
	for _, g := range gates {
		numV, okN := ns[g.num]
		denV, okD := ns[g.den]
		if !okN || !okD {
			fmt.Fprintf(w, "  MISSING %s/%s (have num=%v den=%v)\n", g.num, g.den, okN, okD)
			failed = true
			continue
		}
		ratio := numV / denV
		verdict := "ok  "
		if ratio < g.min {
			verdict = "FAIL"
			failed = true
		}
		fmt.Fprintf(w, "  %s %s/%s = %.2fx (want >= %.2fx)\n", verdict, g.num, g.den, ratio, g.min)
	}
	if failed {
		fmt.Fprintln(w, "benchjson: speedup gate failed")
	}
	return failed, nil
}

// SLOClass mirrors cmd/pmserve's loadgen output: one query class's
// request count and latency quantiles in nanoseconds.
type SLOClass struct {
	Count     uint64             `json:"count"`
	Quantiles map[string]float64 `json:"quantiles"`
}

// SLODoc is the pmserve -loadgen SLO document.
type SLODoc struct {
	Classes map[string]SLOClass `json:"classes"`
}

func loadSLO(path string) (SLODoc, error) {
	var doc SLODoc
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Classes) == 0 {
		return doc, fmt.Errorf("%s: no classes (not a pmserve -loadgen SLO document?)", path)
	}
	return doc, nil
}

// compareQuantiles gates per-class p99 latency: a class regresses when
// its p99 worsens by more than the tolerance fraction AND more than
// floorNs absolute nanoseconds. Classes present only on one side are
// informational.
func compareQuantiles(w *os.File, basePath, newPath string, tolerance, floorNs float64) (regressed bool, err error) {
	baseDoc, err := loadSLO(basePath)
	if err != nil {
		return false, err
	}
	newDoc, err := loadSLO(newPath)
	if err != nil {
		return false, err
	}
	classes := make([]string, 0, len(newDoc.Classes))
	for c := range newDoc.Classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	matched := 0
	for _, c := range classes {
		newP99 := newDoc.Classes[c].Quantiles["p99"]
		base, ok := baseDoc.Classes[c]
		if !ok {
			fmt.Fprintf(w, "  new    %-10s p99=%12.0f ns\n", c, newP99)
			continue
		}
		matched++
		baseP99 := base.Quantiles["p99"]
		verdict := "ok    "
		if baseP99 > 0 && newP99 > baseP99*(1+tolerance) && newP99-baseP99 > floorNs {
			verdict = "SLOWER"
			regressed = true
		} else if baseP99 > 0 && newP99 < baseP99*(1-tolerance) && baseP99-newP99 > floorNs {
			verdict = "faster"
		}
		pct := 0.0
		if baseP99 > 0 {
			pct = (newP99/baseP99 - 1) * 100
		}
		fmt.Fprintf(w, "  %s %-10s p99 %12.0f -> %12.0f ns  (%+.1f%%)\n", verdict, c, baseP99, newP99, pct)
	}
	for c, sc := range baseDoc.Classes {
		if _, ok := newDoc.Classes[c]; !ok {
			fmt.Fprintf(w, "  gone   %-10s p99=%12.0f ns\n", c, sc.Quantiles["p99"])
		}
	}
	if matched == 0 {
		return false, fmt.Errorf("no query class appears in both %s and %s", basePath, newPath)
	}
	if regressed {
		fmt.Fprintf(w, "benchjson: p99 SLO regression beyond %.0f%% tolerance (+%.0f ns floor)\n", tolerance*100, floorNs)
	}
	return regressed, nil
}
