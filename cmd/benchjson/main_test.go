package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkSolveParallel-8   \t 3 \t 401203100 ns/op \t 262144 cells \t 4 workers")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkSolveParallel-8" || r.Iters != 3 {
		t.Fatalf("got %+v", r)
	}
	want := map[string]float64{"ns/op": 401203100, "cells": 262144, "workers": 4}
	for k, v := range want {
		if r.Metrics[k] != v {
			t.Errorf("metric %s = %v, want %v", k, r.Metrics[k], v)
		}
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{"Benchmark", "BenchmarkX notanumber", ""} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parsed %q", line)
		}
	}
}
