package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkSolveParallel-8   \t 3 \t 401203100 ns/op \t 262144 cells \t 4 workers")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkSolveParallel-8" || r.Iters != 3 {
		t.Fatalf("got %+v", r)
	}
	want := map[string]float64{"ns/op": 401203100, "cells": 262144, "workers": 4}
	for k, v := range want {
		if r.Metrics[k] != v {
			t.Errorf("metric %s = %v, want %v", k, r.Metrics[k], v)
		}
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{"Benchmark", "BenchmarkX notanumber", ""} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parsed %q", line)
		}
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkSolve-8":         "BenchmarkSolve",
		"BenchmarkSolve-16":        "BenchmarkSolve",
		"BenchmarkSolve":           "BenchmarkSolve",
		"BenchmarkPool/workers4-2": "BenchmarkPool/workers4",
		"BenchmarkFig3Overlap":     "BenchmarkFig3Overlap",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func writeDoc(t *testing.T, path string, results []Result) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(Doc{Results: results}); err != nil {
		t.Fatal(err)
	}
}

func res(name string, ns float64) Result {
	return Result{Name: name, Iters: 1, Metrics: map[string]float64{"ns/op": ns}}
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")

	// Within tolerance (+5%), plus a new and a vanished benchmark: pass.
	writeDoc(t, oldPath, []Result{res("BenchmarkA-8", 100), res("BenchmarkGone-8", 50)})
	writeDoc(t, newPath, []Result{res("BenchmarkA-4", 105), res("BenchmarkNew-4", 10)})
	regressed, err := compare(os.Stdout, oldPath, newPath, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Error("+5% flagged as a regression at 10% tolerance")
	}

	// Beyond tolerance (+25%): fail.
	writeDoc(t, newPath, []Result{res("BenchmarkA-4", 125)})
	regressed, err = compare(os.Stdout, oldPath, newPath, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Error("+25% not flagged as a regression at 10% tolerance")
	}

	// Disjoint benchmark sets: an error, not a silent pass.
	writeDoc(t, newPath, []Result{res("BenchmarkUnrelated-4", 1)})
	if _, err := compare(os.Stdout, oldPath, newPath, 0.10); err == nil {
		t.Error("disjoint documents compared without error")
	}
}

func TestParseSpeedups(t *testing.T) {
	specs, err := parseSpeedups("BenchmarkSolveSerial/BenchmarkSolveParallel>=1.3, BenchmarkAdvectSerial / BenchmarkAdvectParallel >= 1.0")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("parsed %d specs, want 2", len(specs))
	}
	if specs[0].num != "BenchmarkSolveSerial" || specs[0].den != "BenchmarkSolveParallel" || specs[0].min != 1.3 {
		t.Errorf("spec 0 = %+v", specs[0])
	}
	if specs[1].num != "BenchmarkAdvectSerial" || specs[1].den != "BenchmarkAdvectParallel" || specs[1].min != 1.0 {
		t.Errorf("spec 1 = %+v", specs[1])
	}
	for _, bad := range []string{"", "A>=1.3", "A/B", "A/B>=zero", "A/B>=-2"} {
		if _, err := parseSpeedups(bad); err == nil {
			t.Errorf("parsed bad spec %q", bad)
		}
	}
}

func TestCheckSpeedups(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.json")
	writeDoc(t, path, []Result{
		res("BenchmarkSolveSerial-8", 200),
		res("BenchmarkSolveParallel-8", 100),
		res("BenchmarkAdvectSerial-8", 99),
		res("BenchmarkAdvectParallel-8", 100),
	})

	// 2.0x solve speedup passes a 1.3x gate.
	failed, err := checkSpeedups(os.Stdout, path, "BenchmarkSolveSerial/BenchmarkSolveParallel>=1.3")
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Error("2.0x speedup failed a 1.3x gate")
	}

	// 0.99x advect "speedup" fails a 1.0x gate.
	failed, err = checkSpeedups(os.Stdout, path, "BenchmarkAdvectSerial/BenchmarkAdvectParallel>=1.0")
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("0.99x ratio passed a 1.0x gate")
	}

	// One passing and one failing gate: the document fails.
	failed, err = checkSpeedups(os.Stdout, path, "BenchmarkSolveSerial/BenchmarkSolveParallel>=1.3,BenchmarkAdvectSerial/BenchmarkAdvectParallel>=1.0")
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("mixed gates passed")
	}

	// A gate naming a missing benchmark fails rather than silently passing.
	failed, err = checkSpeedups(os.Stdout, path, "BenchmarkMissing/BenchmarkSolveParallel>=1.0")
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("missing benchmark passed the gate")
	}
}

func writeSLODoc(t *testing.T, path string, classes map[string]SLOClass) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(SLODoc{Classes: classes}); err != nil {
		t.Fatal(err)
	}
}

func slo(p99 float64) SLOClass {
	return SLOClass{Count: 100, Quantiles: map[string]float64{"p50": p99 / 4, "p95": p99 / 2, "p99": p99}}
}

func TestCompareQuantiles(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	newPath := filepath.Join(dir, "new.json")
	const tol, floor = 0.25, 500_000.0

	// Within tolerance, plus a new and a vanished class: pass.
	writeSLODoc(t, basePath, map[string]SLOClass{"point": slo(4e6), "gone": slo(1e6)})
	writeSLODoc(t, newPath, map[string]SLOClass{"point": slo(4.5e6), "region": slo(9e6)})
	regressed, err := compareQuantiles(os.Stdout, basePath, newPath, tol, floor)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Error("+12.5% p99 flagged at 25% tolerance")
	}

	// Beyond the fraction AND the absolute floor: fail.
	writeSLODoc(t, newPath, map[string]SLOClass{"point": slo(8e6)})
	regressed, err = compareQuantiles(os.Stdout, basePath, newPath, tol, floor)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Error("+100% p99 (+4ms) not flagged")
	}

	// Beyond the fraction but under the absolute floor (80us -> 130us):
	// sub-millisecond jitter must not fail the gate.
	writeSLODoc(t, basePath, map[string]SLOClass{"point": slo(80_000)})
	writeSLODoc(t, newPath, map[string]SLOClass{"point": slo(130_000)})
	regressed, err = compareQuantiles(os.Stdout, basePath, newPath, tol, floor)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Error("+50us p99 flagged despite the 500us noise floor")
	}

	// Disjoint class sets: an error, not a silent pass.
	writeSLODoc(t, newPath, map[string]SLOClass{"agg": slo(1e6)})
	if _, err := compareQuantiles(os.Stdout, basePath, newPath, tol, floor); err == nil {
		t.Error("disjoint SLO documents compared without error")
	}

	// An empty document is rejected outright.
	writeSLODoc(t, newPath, nil)
	if _, err := compareQuantiles(os.Stdout, basePath, newPath, tol, floor); err == nil {
		t.Error("empty SLO document accepted")
	}
}
