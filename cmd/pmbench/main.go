// Command pmbench regenerates the tables and figures of the PM-octree
// paper's evaluation (§5). Each experiment id names a paper artifact:
//
//	pmbench table2     DRAM/NVBM characteristics (Table 2)
//	pmbench writemix   write share of meshing memory accesses (§1)
//	pmbench fig3       overlap ratio and memory per 1000 octants
//	pmbench fig5       locality-oblivious vs aware layout writes
//	pmbench fig6       weak scaling, three implementations
//	pmbench fig7       weak-scaling routine breakdown
//	pmbench fig8       strong scaling of PM-octree (+ breakdown)
//	pmbench fig9       strong scaling, three implementations
//	pmbench fig10      DRAM size configured for the C0 tree
//	pmbench fig11      dynamic transformation on/off
//	pmbench recovery   restart time after failures (§5.6)
//	pmbench endurance  NVBM wear and lifetime, layout on/off (extension)
//	pmbench workloads  the three motivating workloads on PM-octree (extension)
//	pmbench all        everything above
//
// -paper selects the larger configuration (minutes, closer to the paper's
// sweeps); the default finishes in seconds. -titan pushes the
// weak-scaling sweep to the paper's 1000-processor point (slow; use with
// fig6/fig7). -json emits machine-readable results for plotting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pmoctree/internal/experiments"
)

func main() {
	paper := flag.Bool("paper", false, "run the large (paper-shaped) configuration")
	titan := flag.Bool("titan", false, "weak-scale to 1000 simulated ranks (slow)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}

	sc := experiments.DefaultScale()
	if *paper {
		sc = experiments.PaperScale()
	}
	if *titan {
		sc = experiments.TitanScale()
	}

	ids := flag.Args()
	if len(ids) == 1 && ids[0] == "all" {
		ids = []string{"table2", "writemix", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "recovery", "endurance", "workloads"}
	}
	results := map[string]any{}
	for _, id := range ids {
		start := time.Now()
		out, data, err := run(id, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmbench: %v\n", err)
			os.Exit(1)
		}
		if *asJSON {
			results[strings.ToLower(id)] = data
			fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", id, time.Since(start).Round(time.Millisecond))
			continue
		}
		fmt.Print(out)
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "pmbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// run executes one experiment, returning its formatted table and the
// structured rows (for -json). Scaling experiments share results across
// the figure pairs that reuse them.
func run(id string, sc experiments.Scale) (string, any, error) {
	switch strings.ToLower(id) {
	case "table2":
		rows := experiments.Table2()
		return experiments.FormatTable2(rows), rows, nil
	case "writemix":
		res := experiments.WriteMix(sc)
		return experiments.FormatWriteMix(res), res, nil
	case "fig3":
		rows := experiments.Fig3(sc)
		return experiments.FormatFig3(rows), rows, nil
	case "fig5":
		res := experiments.Fig5()
		return experiments.FormatFig5(res), res, nil
	case "fig6":
		pts := experiments.Fig6(sc)
		return experiments.FormatScaling("Figure 6: weak scaling (1 jet per rank)", pts), pts, nil
	case "fig7":
		pts := experiments.Fig7Points(sc)
		return experiments.FormatBreakdown("Figure 7: weak-scaling routine breakdown (PM-octree)", pts), pts, nil
	case "fig8":
		pts := experiments.Fig8(sc)
		return experiments.FormatStrong(pts) +
			experiments.FormatBreakdown("Figure 8(b): strong-scaling routine breakdown", pts), pts, nil
	case "fig9":
		pts := experiments.Fig9(sc)
		return experiments.FormatScaling("Figure 9: strong scaling, three implementations", pts), pts, nil
	case "fig10":
		rows, ic, oc := experiments.Fig10(sc)
		data := map[string]any{"rows": rows, "inCoreSeconds": ic, "outOfCoreSeconds": oc}
		return experiments.FormatFig10(rows, ic, oc), data, nil
	case "fig11":
		rows := experiments.Fig11(sc)
		return experiments.FormatFig11(rows), rows, nil
	case "workloads":
		rows := experiments.Workloads(sc)
		return experiments.FormatWorkloads(rows), rows, nil
	case "endurance":
		rows := experiments.Endurance(sc)
		return experiments.FormatEndurance(rows), rows, nil
	case "recovery":
		rows, err := experiments.Recovery(sc)
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatRecovery(rows), rows, nil
	default:
		return "", nil, fmt.Errorf("unknown experiment %q (try: pmbench all)", id)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: pmbench [-paper|-titan] [-json] <experiment>...

experiments: table2 writemix fig3 fig5 fig6 fig7 fig8 fig9 fig10 fig11 recovery endurance workloads all
`)
}
