// Command pmbench regenerates the tables and figures of the PM-octree
// paper's evaluation (§5). Each experiment id names a paper artifact:
//
//	pmbench table2     DRAM/NVBM characteristics (Table 2)
//	pmbench writemix   write share of meshing memory accesses (§1)
//	pmbench fig3       overlap ratio and memory per 1000 octants
//	pmbench fig5       locality-oblivious vs aware layout writes
//	pmbench fig6       weak scaling, three implementations
//	pmbench fig7       weak-scaling routine breakdown
//	pmbench fig8       strong scaling of PM-octree (+ breakdown)
//	pmbench fig9       strong scaling, three implementations
//	pmbench fig10      DRAM size configured for the C0 tree
//	pmbench fig11      dynamic transformation on/off
//	pmbench recovery   restart time after failures (§5.6)
//	pmbench endurance  NVBM wear and lifetime, layout on/off (extension)
//	pmbench workloads  the three motivating workloads on PM-octree (extension)
//	pmbench pipeline   sync vs async pipelined persistence, group commit (extension)
//	pmbench all        everything above
//
// -paper selects the larger configuration (minutes, closer to the paper's
// sweeps); the default finishes in seconds. -titan pushes the
// weak-scaling sweep to the paper's 1000-processor point (slow; use with
// fig6/fig7). -json emits machine-readable results for plotting.
//
// Telemetry (works with every experiment id):
//
//	-trace=out.json    Chrome trace_event timeline (chrome://tracing, Perfetto)
//	-metrics=out.jsonl one JSON step record per line (step, phases, NVBM deltas)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pmoctree/internal/experiments"
	"pmoctree/internal/telemetry"
)

func main() {
	paper := flag.Bool("paper", false, "run the large (paper-shaped) configuration")
	titan := flag.Bool("titan", false, "weak-scale to 1000 simulated ranks (slow)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	tracePath := flag.String("trace", "", "write a Chrome trace_event timeline to `file`")
	metricsPath := flag.String("metrics", "", "write per-step JSONL records to `file`")
	workers := flag.Int("workers", 0, "per-rank worker-pool width (0 = GOMAXPROCS); results are identical for any value")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}

	sc := experiments.DefaultScale()
	if *paper {
		sc = experiments.PaperScale()
	}
	if *titan {
		sc = experiments.TitanScale()
	}
	sc.Workers = *workers

	// The observer is shared across the requested ids: the trace file then
	// holds every experiment's timeline back to back.
	var obs *telemetry.Observer
	if *tracePath != "" || *metricsPath != "" {
		obs = telemetry.NewObserver()
	}

	ids := flag.Args()
	if len(ids) == 1 && ids[0] == "all" {
		ids = []string{"table2", "writemix", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "recovery", "endurance", "workloads", "pipeline"}
	}
	results := map[string]any{}
	for _, id := range ids {
		start := time.Now()
		out, data, err := run(id, sc, obs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmbench: %v\n", err)
			os.Exit(1)
		}
		if *asJSON {
			results[strings.ToLower(id)] = data
			fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", id, time.Since(start).Round(time.Millisecond))
			continue
		}
		fmt.Print(out)
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "pmbench: %v\n", err)
			os.Exit(1)
		}
	}
	if err := writeTelemetry(obs, *tracePath, *metricsPath); err != nil {
		fmt.Fprintf(os.Stderr, "pmbench: %v\n", err)
		os.Exit(1)
	}
}

// writeTelemetry flushes the observer to the requested output files.
func writeTelemetry(obs *telemetry.Observer, tracePath, metricsPath string) error {
	if obs == nil {
		return nil
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := obs.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := obs.WriteSteps(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// run executes one experiment, returning its formatted table and the
// structured rows (for -json). Scaling experiments share results across
// the figure pairs that reuse them.
func run(id string, sc experiments.Scale, obs *telemetry.Observer) (string, any, error) {
	switch strings.ToLower(id) {
	case "table2":
		rows := experiments.Table2()
		return experiments.FormatTable2(rows), rows, nil
	case "writemix":
		res := experiments.WriteMix(sc, obs)
		return experiments.FormatWriteMix(res), res, nil
	case "fig3":
		rows := experiments.Fig3(sc, obs)
		return experiments.FormatFig3(rows), rows, nil
	case "fig5":
		res := experiments.Fig5(obs)
		return experiments.FormatFig5(res), res, nil
	case "fig6":
		pts := experiments.Fig6(sc, obs)
		return experiments.FormatScaling("Figure 6: weak scaling (1 jet per rank)", pts), pts, nil
	case "fig7":
		pts := experiments.Fig7Points(sc, obs)
		return experiments.FormatBreakdown("Figure 7: weak-scaling routine breakdown (PM-octree)", pts), pts, nil
	case "fig8":
		pts := experiments.Fig8(sc, obs)
		return experiments.FormatStrong(pts) +
			experiments.FormatBreakdown("Figure 8(b): strong-scaling routine breakdown", pts), pts, nil
	case "fig9":
		pts := experiments.Fig9(sc, obs)
		return experiments.FormatScaling("Figure 9: strong scaling, three implementations", pts), pts, nil
	case "fig10":
		rows, ic, oc := experiments.Fig10(sc, obs)
		data := map[string]any{"rows": rows, "inCoreSeconds": ic, "outOfCoreSeconds": oc}
		return experiments.FormatFig10(rows, ic, oc), data, nil
	case "fig11":
		rows := experiments.Fig11(sc, obs)
		return experiments.FormatFig11(rows), rows, nil
	case "workloads":
		rows := experiments.Workloads(sc, obs)
		return experiments.FormatWorkloads(rows), rows, nil
	case "endurance":
		rows := experiments.Endurance(sc, obs)
		return experiments.FormatEndurance(rows), rows, nil
	case "pipeline":
		rows := experiments.Pipeline(sc, obs)
		return experiments.FormatPipeline(rows), rows, nil
	case "recovery":
		rows, err := experiments.Recovery(sc, obs)
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatRecovery(rows), rows, nil
	default:
		return "", nil, fmt.Errorf("unknown experiment %q (try: pmbench all)", id)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: pmbench [-paper|-titan] [-json] [-trace=file] [-metrics=file] <experiment>...

experiments: table2 writemix fig3 fig5 fig6 fig7 fig8 fig9 fig10 fig11 recovery endurance workloads pipeline all
`)
}
