// Command pmrouter is the fault-tolerant query front tier: it maps
// Z-order key spans onto shard backends (pmserve processes or in-process
// catalogs), scatter-gathers region and aggregate queries across the
// spans a request touches, and hides shard failures behind health-gated
// retries, hedged reads, circuit breakers, and a two-level fallback
// (recovery replica, then healthy-peer takeover, then a stale committed
// version served with explicit degraded markers).
//
// Modes:
//
//	pmrouter -shards http://h1:8077,http://h2:8077   front remote pmserve shards
//	  [-replicas http://r1:8077,]                    per-shard replica endpoints
//	                                                 (aligned by index, blank = none)
//	pmrouter -image run.img -inproc 3                single-process demo: route
//	                                                 across N in-process shards
//	                                                 over one restored image
//	pmrouter -images s0.img,s1.img                   route across in-process
//	                                                 shards restored from
//	                                                 materialized per-shard
//	                                                 arenas (pmserve
//	                                                 -materialize output)
//	pmrouter ... -script queries.json                batch mode: print one
//	                                                 "<status> <body>" line per
//	                                                 query, exit (CI smoke)
//	pmrouter ... -loadgen -script mix.json           closed-loop load over the
//	                                                 routed surface; emits the
//	                                                 SLO JSON CI gates on
//	pmrouter -chaos -seed 7                          run the router chaos soak
//	                                                 (kill/restart shards under
//	                                                 query load), print the
//	                                                 report, exit non-zero on
//	                                                 any wrong answer
//
// The routed HTTP surface mirrors pmserve's (/v1/point, /v1/region,
// /v1/agg, /v1/versions) with a provenance envelope on every answer
// (requested_version, served_version, degraded, served_by) plus
// /v1/shards for per-shard health, breaker, and span state. /metrics,
// /healthz, and /readyz stay outside the drainer so the balancer can
// watch readiness flip during the SIGTERM drain.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pmoctree"
	"pmoctree/internal/fault"
	"pmoctree/internal/router"
	"pmoctree/internal/serve"
	"pmoctree/internal/telemetry"
)

func main() {
	var (
		shardList   = flag.String("shards", "", "comma-separated shard base URLs (pmserve endpoints, ascending span order)")
		replicaList = flag.String("replicas", "", "comma-separated replica base URLs aligned with -shards (blank entry = no replica)")
		image       = flag.String("image", "", "NVBM device image for -inproc mode")
		inproc      = flag.Int("inproc", 0, "run this many in-process shards over -image instead of -shards")
		images      = flag.String("images", "", "comma-separated per-shard NVBM images (pmserve -materialize output, ascending span order): each in-process shard restores only its own arena; note healthy-peer takeover cannot cover a dead shard's span in this mode, since no peer holds it")
		addr        = flag.String("addr", "localhost:8078", "listen address for serve mode")
		keep        = flag.Int("keep", 4, "committed versions to keep pinned per in-process shard")

		retries    = flag.Int("retries", 2, "max retries per shard attempt")
		hedge      = flag.Duration("hedge", 0, "hedged-read delay against a shard's replica (0 = off)")
		attemptTO  = flag.Duration("attempt-timeout", 2*time.Second, "per-attempt timeout")
		probeEvery = flag.Duration("probe-interval", 2*time.Second, "background shard health-probe interval (0 = off)")
		drainFor   = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout on SIGTERM/SIGINT")
		seed       = flag.Int64("seed", 1, "seed for retry jitter (and the -chaos schedule)")

		script     = flag.String("script", "", "batch mode: JSON array of request paths to run and print")
		loadgen    = flag.Bool("loadgen", false, "closed-loop load generation over -script; writes an SLO JSON summary and exits")
		lgClients  = flag.Int("loadgen-clients", 4, "concurrent clients for -loadgen (closed-loop: offered load; open-loop: in-flight bound)")
		lgRequests = flag.Int("loadgen-requests", 400, "total requests for -loadgen")
		lgRate     = flag.Float64("loadgen-rate", 0, "open-loop -loadgen: offer this many requests/second on a fixed schedule regardless of service rate (0 = closed loop); latency counts queueing from the scheduled arrival")
		lgPoisson  = flag.Bool("loadgen-poisson", false, "draw open-loop inter-arrival gaps from a Poisson process at -loadgen-rate instead of a fixed interval")
		sloOut     = flag.String("slo-out", "", "write the -loadgen SLO JSON to this file (default stdout)")

		chaos       = flag.Bool("chaos", false, "run the router chaos soak and exit")
		chaosRounds = flag.Int("chaos-rounds", 16, "soak rounds for -chaos")
		chaosShards = flag.Int("chaos-shards", 3, "shard count for -chaos")

		flightDump = flag.String("flightdump", "", "write the flight-recorder ring as JSONL to this file on exit and on SIGQUIT")
	)
	flag.Parse()

	reg := telemetry.NewRegistry()
	flight := telemetry.NewFlightRecorder(4096)
	dumpFlight := func() {}
	if *flightDump != "" {
		stop := flight.DumpOnSignal(*flightDump, syscall.SIGQUIT)
		dumpFlight = func() {
			stop()
			flight.DumpFile(*flightDump)
		}
	}

	if *chaos {
		rep, err := fault.RunRouterChaos(fault.RouterChaosConfig{
			Seed:     *seed,
			Shards:   *chaosShards,
			Rounds:   *chaosRounds,
			Registry: reg,
			Recorder: flight,
		})
		fmt.Print(rep.String())
		dumpFlight()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmrouter: chaos soak FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}
	defer dumpFlight()

	shards, cleanup, err := buildShards(*shardList, *replicaList, *image, *images, *inproc, *keep, reg, flight)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmrouter:", err)
		os.Exit(2)
	}
	defer cleanup()

	health := telemetry.NewHealth()
	r, err := router.New(router.Config{
		Shards:         shards,
		MaxRetries:     *retries,
		HedgeDelay:     *hedge,
		AttemptTimeout: *attemptTO,
		ProbeInterval:  *probeEvery,
		Seed:           *seed,
		Registry:       reg,
		Recorder:       flight,
		Process:        health,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmrouter:", err)
		os.Exit(2)
	}
	defer r.Close()
	r.Probe(context.Background())
	health.SetReady(true)

	handler := router.NewHandler(r)
	drainer := serve.NewDrainer(handler, health, time.Second, reg)
	mux := http.NewServeMux()
	mux.Handle("/", drainer)
	mux.Handle("/metrics", telemetry.MetricsHandler(reg))
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(reg.Snapshot())
	})
	mux.Handle("/healthz", health.HealthzHandler())
	mux.Handle("/readyz", health.ReadyzHandler())

	if *loadgen {
		if *script == "" {
			fmt.Fprintln(os.Stderr, "pmrouter: -loadgen needs -script (the query mix to replay)")
			os.Exit(2)
		}
		doc, err := serve.RunLoadgenOpts(mux, *script, serve.LoadgenOptions{
			Clients:  *lgClients,
			Requests: *lgRequests,
			Rate:     *lgRate,
			Poisson:  *lgPoisson,
			Seed:     *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmrouter: loadgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pmrouter: loadgen complete (%d clients):\n%s", *lgClients, serve.SummarizeSLO(doc))
		out := io.Writer(os.Stdout)
		if *sloOut != "" {
			f, err := os.Create(*sloOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pmrouter: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := serve.WriteSLO(out, doc); err != nil {
			fmt.Fprintf(os.Stderr, "pmrouter: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *script != "" {
		if err := runScript(mux, *script); err != nil {
			fmt.Fprintf(os.Stderr, "pmrouter: %v\n", err)
			os.Exit(1)
		}
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmrouter: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pmrouter: routing %d shard(s) on http://%s (try /v1/shards)\n",
		len(shards), ln.Addr())
	srv := &http.Server{Handler: mux}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
		<-sig
		// Graceful shutdown: readiness flips first, new queries get 503 +
		// Retry-After, in-flight scatters drain bounded by -drain.
		fmt.Fprintf(os.Stderr, "pmrouter: draining (up to %v)\n", *drainFor)
		if !drainer.Shutdown(*drainFor) {
			fmt.Fprintln(os.Stderr, "pmrouter: drain timeout expired with queries in flight")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "pmrouter: %v\n", err)
		os.Exit(1)
	}
}

// buildShards assembles the backend set: HTTP backends over -shards (with
// optional aligned -replicas), -inproc local shards sharing one restored
// image (every arena holds the full copy; the router's span map partitions
// responsibility), or -images local shards each restoring its own
// materialized per-shard arena (pmserve -materialize output) so shard i's
// process footprint scales with its span, not the whole mesh.
func buildShards(shardList, replicaList, image, images string, inproc, keep int,
	reg *telemetry.Registry, flight *telemetry.FlightRecorder) ([]router.ShardConfig, func(), error) {
	cleanup := func() {}
	modes := 0
	for _, on := range []bool{shardList != "", inproc > 0, images != ""} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return nil, cleanup, fmt.Errorf("-shards, -inproc, and -images are mutually exclusive")
	}

	if images != "" {
		paths := strings.Split(images, ",")
		var closers []func()
		cleanup = func() {
			for i := len(closers) - 1; i >= 0; i-- {
				closers[i]()
			}
		}
		out := make([]router.ShardConfig, len(paths))
		for i, p := range paths {
			p = strings.TrimSpace(p)
			if p == "" {
				return nil, cleanup, fmt.Errorf("-images entry %d is empty", i)
			}
			dev, err := pmoctree.OpenDeviceFile(p)
			if err != nil {
				return nil, cleanup, fmt.Errorf("shard %d image: %w", i, err)
			}
			tree, err := pmoctree.Restore(pmoctree.Config{NVBMDevice: dev, VerifyRestore: true})
			if err != nil {
				return nil, cleanup, fmt.Errorf("restoring shard %d from %s: %w", i, p, err)
			}
			cat := serve.NewCatalog(tree, serve.Config{Keep: keep, Registry: reg})
			sched := serve.NewScheduler(serve.SchedulerConfig{Registry: reg, Recorder: flight})
			closers = append(closers, func() {
				sched.Close()
				cat.Close()
			})
			s, err := cat.Publish()
			if err != nil {
				return nil, cleanup, fmt.Errorf("publishing shard %d: %w", i, err)
			}
			s.Close()
			out[i].Primary = router.NewLocalBackend(fmt.Sprintf("shard%d", i), cat, sched)
		}
		return out, cleanup, nil
	}

	if shardList != "" {
		urls := strings.Split(shardList, ",")
		var replicas []string
		if replicaList != "" {
			replicas = strings.Split(replicaList, ",")
			if len(replicas) != len(urls) {
				return nil, cleanup, fmt.Errorf("-replicas has %d entries, -shards has %d (use blank entries for shards without replicas)", len(replicas), len(urls))
			}
		}
		out := make([]router.ShardConfig, len(urls))
		for i, u := range urls {
			u = strings.TrimSpace(u)
			if u == "" {
				return nil, cleanup, fmt.Errorf("-shards entry %d is empty", i)
			}
			out[i].Primary = router.NewHTTPBackend(fmt.Sprintf("shard%d", i), u, nil)
			if replicas != nil {
				if ru := strings.TrimSpace(replicas[i]); ru != "" {
					out[i].Replica = router.NewHTTPBackend(fmt.Sprintf("shard%d-replica", i), ru, nil)
				}
			}
		}
		return out, cleanup, nil
	}

	if inproc <= 0 {
		return nil, cleanup, fmt.Errorf("need -shards url,... or -image img -inproc N")
	}
	if image == "" {
		return nil, cleanup, fmt.Errorf("-inproc needs -image (produce one with: droplet -image run.img)")
	}
	dev, err := pmoctree.OpenDeviceFile(image)
	if err != nil {
		return nil, cleanup, fmt.Errorf("opening image: %w", err)
	}
	tree, err := pmoctree.Restore(pmoctree.Config{NVBMDevice: dev, VerifyRestore: true})
	if err != nil {
		return nil, cleanup, fmt.Errorf("restoring tree: %w", err)
	}
	cat := serve.NewCatalog(tree, serve.Config{Keep: keep, Registry: reg})
	sched := serve.NewScheduler(serve.SchedulerConfig{Registry: reg, Recorder: flight})
	cleanup = func() {
		sched.Close()
		cat.Close()
	}
	// Publish ring history oldest-first so the newest commit lands last.
	vs := tree.RetainedVersions()
	for i := len(vs) - 1; i >= 0; i-- {
		if s, err := cat.PublishVersion(vs[i].Root, vs[i].Step); err == nil {
			s.Close()
		}
	}
	s, err := cat.Publish()
	if err != nil {
		cleanup()
		return nil, func() {}, fmt.Errorf("publishing committed version: %w", err)
	}
	s.Close()
	out := make([]router.ShardConfig, inproc)
	for i := range out {
		out[i].Primary = router.NewLocalBackend(fmt.Sprintf("shard%d", i), cat, sched)
	}
	return out, cleanup, nil
}

// runScript executes each request path from a JSON string array against
// the handler over a loopback listener and prints one
// "<status> <compact-json-body>" line per request.
func runScript(h http.Handler, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var paths []string
	if err := json.Unmarshal(raw, &paths); err != nil {
		return fmt.Errorf("script %s: %w (want a JSON array of request paths)", path, err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	for _, p := range paths {
		resp, err := http.Get(base + p)
		if err != nil {
			return fmt.Errorf("GET %s: %w", p, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("GET %s: %w", p, err)
		}
		fmt.Printf("%d %s\n", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}
