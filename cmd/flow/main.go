// Command flow runs the projection-method incompressible flow solver on an
// adaptive octree mesh, with every step committed to NVBM through
// PM-octree, and optionally writes a VTK time series for animation — the
// full §4 pipeline as a standalone tool.
//
//	flow -scenario dambreak -steps 40 -vtkdir ./frames
//	flow -scenario drop     -steps 60 -maxlevel 5
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"pmoctree"
	"pmoctree/internal/telemetry"
)

func main() {
	var (
		scenario  = flag.String("scenario", "dambreak", "initial condition: dambreak | drop | jet")
		steps     = flag.Int("steps", 20, "time steps")
		maxLevel  = flag.Int("maxlevel", 4, "maximum refinement level")
		vtkdir    = flag.String("vtkdir", "", "write one VTK frame per step into this directory")
		image     = flag.String("image", "", "write the final NVBM region image to this file")
		debugAddr = flag.String("debug", "", "serve expvar/metrics/pprof on `addr` (e.g. localhost:6060)")
		workers   = flag.Int("workers", 0, "worker-pool width for advection and projection (0 = GOMAXPROCS); results are identical for any value")
	)
	flag.Parse()

	nv := pmoctree.NewNVBM()
	tree := pmoctree.Create(pmoctree.Config{NVBMDevice: nv, DRAMBudgetOctants: 4096})
	if *debugAddr != "" {
		reg := telemetry.NewRegistry()
		tree.RegisterMetrics(reg, "flow")
		dbg, err := telemetry.StartDebugServer(*debugAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/metrics (also /metrics, /debug/vars, /debug/pprof/)\n", dbg.Addr())
	}

	// Refine where the scenario puts liquid initially, plus a margin.
	liquid := initialLiquid(*scenario)
	tree.RefineWhere(func(c pmoctree.Code) bool {
		x, y, z := c.Center()
		h := c.Extent()
		return liquid(x, y, z) || liquid(x+h, y, z) || liquid(x-h, y, z) ||
			liquid(x, y, z+h) || liquid(x, y, z-h)
	}, uint8(*maxLevel))
	tree.Balance()

	sys, err := pmoctree.BuildPoisson(tree.LeafCodes())
	if err != nil {
		log.Fatal(err)
	}
	st := pmoctree.NewFlowState(sys)
	st.SetWorkers(*workers)
	for i := 0; i < sys.N(); i++ {
		x, y, z := sys.Center(i)
		if liquid(x, y, z) {
			st.VOF[i] = 1
		}
	}
	fmt.Printf("%s: %d cells, liquid volume %.4f\n", *scenario, sys.N(), st.LiquidVolume())

	if *vtkdir != "" {
		if err := os.MkdirAll(*vtkdir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	for s := 1; s <= *steps; s++ {
		dt := math.Min(st.CFL()*0.5, 5e-3)
		res, err := st.Step(dt)
		if err != nil {
			log.Fatal(err)
		}
		commitFields(tree, sys, st)
		tree.Persist()
		fmt.Printf("step %3d: dt=%.4f iters=%3d defect=%.1e liquid=%.4f KE=%.5f\n",
			s, dt, res.Iterations, st.FaceDivergenceDefect(), st.LiquidVolume(), st.KineticEnergy())
		if *vtkdir != "" {
			writeFrame(tree, *vtkdir, s)
		}
	}

	if *image != "" {
		if err := nv.PersistFile(*image); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("persistent region written to %s\n", *image)
	}
}

// initialLiquid returns the scenario's liquid indicator.
func initialLiquid(name string) func(x, y, z float64) bool {
	switch name {
	case "dambreak":
		return func(x, y, z float64) bool { return x < 0.3 && z < 0.5 }
	case "drop":
		return func(x, y, z float64) bool {
			dx, dy, dz := x-0.5, y-0.5, z-0.7
			return dx*dx+dy*dy+dz*dz < 0.15*0.15 || z < 0.15
		}
	case "jet":
		return func(x, y, z float64) bool {
			dx, dy := x-0.5, y-0.5
			return dx*dx+dy*dy < 0.08*0.08 && z > 0.8
		}
	default:
		log.Fatalf("flow: unknown scenario %q", name)
		return nil
	}
}

// commitFields stores the flow fields into the persistent octree.
func commitFields(tree *pmoctree.Tree, sys *pmoctree.PoissonSystem, st *pmoctree.FlowState) {
	byCode := map[pmoctree.Code][3]float64{}
	for i, c := range sys.Codes() {
		byCode[c] = [3]float64{st.VOF[i], st.P[i], st.W[i]}
	}
	tree.UpdateLeaves(func(c pmoctree.Code, d *[pmoctree.DataWords]float64) bool {
		v := byCode[c]
		if d[0] == v[0] && d[1] == v[1] && d[3] == v[2] {
			return false
		}
		d[0], d[1], d[3] = v[0], v[1], v[2]
		return true
	})
}

// writeFrame exports one VTK time-series frame.
func writeFrame(tree *pmoctree.Tree, dir string, step int) {
	hm := pmoctree.Extract(tree.ForEachLeaf)
	path := filepath.Join(dir, fmt.Sprintf("frame_%04d.vtk", step))
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := hm.WriteVTK(f, fmt.Sprintf("flow step %d", step)); err != nil {
		log.Fatal(err)
	}
	f.Close()
}
