// Command pmserve is the MVCC snapshot query server: it restores a
// PM-octree from a persisted NVBM device image (cmd/droplet -image),
// pins committed versions into an internal/serve catalog, and answers
// point lookups, region queries, and field aggregations over HTTP —
// optionally while a simulation writer keeps committing new steps in the
// background.
//
// Modes:
//
//	pmserve -image run.img                       serve until interrupted
//	pmserve -image run.img -simulate 10          keep simulating while serving
//	pmserve -image run.img -script queries.json  batch mode: run scripted
//	                                             queries, print one
//	                                             "<status> <body>" line per
//	                                             query, exit (CI smoke)
//	pmserve -image run.img -materialize 1/4 \
//	        -out s1.img                          carve shard 1-of-4's Z-order
//	                                             span into a small per-shard
//	                                             arena (serve with
//	                                             pmrouter -images)
//
// With -history (the default), versions retained in the fallback ring
// (cmd/droplet -retain) are published alongside the newest commit, so
// clients can query several pinned steps of history.
//
// Observability: /metrics serves the telemetry registry in Prometheus
// text format, /metrics.json as JSON; /healthz and /readyz report
// liveness and readiness; every query carries an X-Trace-Id whose
// per-phase breakdown is retrievable from /v1/trace; -flightdump and
// -tracedump write the flight-recorder ring (JSONL) and the retained
// request traces (Chrome trace JSON) on exit, and SIGQUIT dumps the
// flight ring from a live process. -loadgen runs the scripted query mix
// closed-loop and emits the per-class latency SLO document CI gates on.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pmoctree"
	"pmoctree/internal/bulk"
	"pmoctree/internal/router"
	"pmoctree/internal/serve"
	"pmoctree/internal/telemetry"
)

func main() {
	var (
		image    = flag.String("image", "", "NVBM device image to restore and serve (required)")
		addr     = flag.String("addr", "localhost:8077", "listen address for serve mode")
		keep     = flag.Int("keep", 4, "committed versions to keep pinned in the catalog")
		history  = flag.Bool("history", true, "also publish versions retained in the fallback ring")
		workers  = flag.Int("workers", 0, "scheduler worker goroutines (0 = default)")
		queue    = flag.Int("queue", 0, "admission queue depth (0 = default); full queue answers 503 + Retry-After")
		batch    = flag.Int("batch", 0, "requests drained per worker wakeup (0 = default)")
		shard    = flag.String("shard", "", "serve as shard `i/N`: region/agg requests without explicit klo/khi default to shard i's Z-order key span (0-based, e.g. -shard 1/4); explicit klo/khi overrides, so a router can serve a dead peer's span from this full copy")
		drainFor = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout for in-flight queries on SIGTERM/SIGINT")
		simulate = flag.Int("simulate", 0, "continue the droplet workload for this many steps, publishing every commit")
		maxLevel = flag.Int("maxlevel", 5, "maximum refinement level for -simulate")
		stepTime = flag.Duration("steptime", 500*time.Millisecond, "pause between -simulate steps in serve mode")
		script   = flag.String("script", "", "batch mode: JSON array of request paths to run and print")

		debugAddr  = flag.String("debug", "", "serve expvar/metrics/pprof on `addr` (e.g. localhost:6060)")
		traceCap   = flag.Int("traces", 256, "request traces retained for /v1/trace")
		traceDump  = flag.String("tracedump", "", "write retained request traces as Chrome trace JSON to this file on exit")
		flightDump = flag.String("flightdump", "", "write the flight-recorder ring as JSONL to this file on exit and on SIGQUIT")

		materialize = flag.String("materialize", "", "materialize shard `i/N`: bulk-construct a per-shard arena holding only shard i's Z-order key span (the rest of the domain tiled by a zero-payload cover), write it to -out, print the footprint, and exit; serve the result with pmrouter -images")
		matOut      = flag.String("out", "", "per-shard NVBM image file to write for -materialize")

		loadgen    = flag.Bool("loadgen", false, "load generation over the -script query mix; writes an SLO JSON summary and exits (closed loop unless -loadgen-rate is set)")
		lgClients  = flag.Int("loadgen-clients", 4, "concurrent clients for -loadgen (closed-loop: offered load; open-loop: in-flight bound)")
		lgRequests = flag.Int("loadgen-requests", 400, "total requests for -loadgen")
		lgRate     = flag.Float64("loadgen-rate", 0, "open-loop -loadgen: offer this many requests/second on a fixed schedule regardless of service rate (0 = closed loop); latency counts queueing from the scheduled arrival")
		lgPoisson  = flag.Bool("loadgen-poisson", false, "draw open-loop inter-arrival gaps from a Poisson process at -loadgen-rate instead of a fixed interval")
		lgSeed     = flag.Int64("loadgen-seed", 1, "seed for the -loadgen-poisson arrival schedule")
		sloOut     = flag.String("slo-out", "", "write the -loadgen SLO JSON to this file (default stdout)")
	)
	flag.Parse()
	if *image == "" {
		fmt.Fprintln(os.Stderr, "pmserve: -image is required (produce one with: droplet -image run.img)")
		os.Exit(2)
	}

	dev, err := pmoctree.OpenDeviceFile(*image)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmserve: opening image: %v\n", err)
		os.Exit(1)
	}
	tree, err := pmoctree.Restore(pmoctree.Config{NVBMDevice: dev, VerifyRestore: true})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmserve: restoring tree: %v\n", err)
		os.Exit(1)
	}

	if *materialize != "" {
		os.Exit(runMaterialize(tree, dev, *materialize, *matOut))
	}

	reg := telemetry.NewRegistry()
	flight := telemetry.NewFlightRecorder(4096)
	tree.SetFlightRecorder(flight)
	if *flightDump != "" {
		defer flight.DumpFile(*flightDump)
		defer flight.DumpOnSignal(*flightDump, syscall.SIGQUIT)()
	}
	cat := serve.NewCatalog(tree, serve.Config{Keep: *keep, Registry: reg})
	sched := serve.NewScheduler(serve.SchedulerConfig{
		Workers:    *workers,
		QueueDepth: *queue,
		BatchSize:  *batch,
		Registry:   reg,
		Recorder:   flight,
	})
	defer sched.Close()
	defer cat.Close()

	// Publish ring history oldest-first so the newest commit lands last.
	if *history {
		vs := tree.RetainedVersions()
		for i := len(vs) - 1; i >= 0; i-- {
			s, err := cat.PublishVersion(vs[i].Root, vs[i].Step)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pmserve: ring version step %d: %v\n", vs[i].Step, err)
				continue
			}
			s.Close()
		}
	}
	s, err := cat.Publish()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmserve: publishing committed version: %v\n", err)
		os.Exit(1)
	}
	s.Close()

	handler := serve.NewHandler(cat, sched)
	if *shard != "" {
		kr, err := router.ParseShardSpec(*shard)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmserve: %v\n", err)
			os.Exit(2)
		}
		handler.RestrictSpan(kr)
	}
	traces := telemetry.NewTraceSink(*traceCap)
	handler.SetTraceSink(traces)
	if *traceDump != "" {
		defer func() {
			if out, err := os.Create(*traceDump); err == nil {
				_ = traces.WriteChromeTrace(out)
				out.Close()
			}
		}()
	}

	health := telemetry.NewHealth()
	health.AddCheck("catalog", func() error {
		if len(cat.Steps()) == 0 {
			return fmt.Errorf("no published versions")
		}
		return nil
	})
	health.SetReady(true)

	// The drainer wraps only the query surface: /metrics, /healthz, and
	// /readyz stay reachable while a drain runs, so the balancer can watch
	// readiness flip before the first refusal.
	drainer := serve.NewDrainer(handler, health, sched.RetryAfter(), reg)
	mux := http.NewServeMux()
	mux.Handle("/", drainer)
	mux.Handle("/metrics", telemetry.MetricsHandler(reg))
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(reg.Snapshot())
	})
	mux.Handle("/healthz", health.HealthzHandler())
	mux.Handle("/readyz", health.ReadyzHandler())

	if *debugAddr != "" {
		dbg, err := telemetry.StartDebugServer(*debugAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmserve: %v\n", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "pmserve: debug server on http://%s/debug/metrics\n", dbg.Addr())
	}

	if *loadgen {
		if *script == "" {
			fmt.Fprintln(os.Stderr, "pmserve: -loadgen needs -script (the query mix to replay)")
			os.Exit(2)
		}
		runSimulation(tree, cat, *simulate, *maxLevel, 0)
		doc, err := serve.RunLoadgenOpts(mux, *script, serve.LoadgenOptions{
			Clients:  *lgClients,
			Requests: *lgRequests,
			Rate:     *lgRate,
			Poisson:  *lgPoisson,
			Seed:     *lgSeed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmserve: loadgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pmserve: loadgen complete (%d clients):\n%s", *lgClients, serve.SummarizeSLO(doc))
		out := io.Writer(os.Stdout)
		if *sloOut != "" {
			f, err := os.Create(*sloOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pmserve: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := serve.WriteSLO(out, doc); err != nil {
			fmt.Fprintf(os.Stderr, "pmserve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *script != "" {
		// Batch mode: any -simulate steps run up front so output is
		// deterministic, then the scripted queries replay over loopback.
		runSimulation(tree, cat, *simulate, *maxLevel, 0)
		if err := runScript(mux, *script); err != nil {
			fmt.Fprintf(os.Stderr, "pmserve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *simulate > 0 {
		go runSimulation(tree, cat, *simulate, *maxLevel, *stepTime)
	}
	go watchSaturation(health, reg, flight)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pmserve: serving %d version(s) of %s on http://%s (try /v1/versions)\n",
		len(cat.Steps()), *image, ln.Addr())
	srv := &http.Server{Handler: mux}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
		<-sig
		// Graceful shutdown: readiness flips first, new queries get 503 +
		// Retry-After, in-flight queries drain bounded by -drain.
		fmt.Fprintf(os.Stderr, "pmserve: draining (up to %v)\n", *drainFor)
		if !drainer.Shutdown(*drainFor) {
			fmt.Fprintln(os.Stderr, "pmserve: drain timeout expired with queries in flight")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "pmserve: %v\n", err)
		os.Exit(1)
	}
}

// runMaterialize builds the per-shard arena for -materialize and writes
// it to out. Exit codes: 0 success, 2 flag misuse (bad spec, missing
// -out), 3 malformed bulk input (the typed validation errors), 1
// everything else.
func runMaterialize(tree *pmoctree.Tree, src *pmoctree.Device, spec, out string) int {
	if out == "" {
		fmt.Fprintln(os.Stderr, "pmserve: -materialize needs -out (the per-shard image file to write)")
		return 2
	}
	kr, err := router.ParseShardSpec(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmserve: %v\n", err)
		return 2
	}
	dev := pmoctree.NewNVBM()
	_, st, err := router.MaterializeShard(tree, kr, pmoctree.Config{NVBMDevice: dev}, nil)
	if err != nil {
		if bulk.IsInputError(err) {
			fmt.Fprintf(os.Stderr, "pmserve: materialize %s: malformed leaf set: %v\n", spec, err)
			return 3
		}
		fmt.Fprintf(os.Stderr, "pmserve: materialize %s: %v\n", spec, err)
		return 1
	}
	if err := dev.PersistFile(out); err != nil {
		fmt.Fprintf(os.Stderr, "pmserve: writing %s: %v\n", out, err)
		return 1
	}
	fmt.Printf("pmserve: materialized shard %s into %s: %d kept leaves + %d fillers (%d octants), %d bytes vs %d full (%.0f%%)\n",
		spec, out, st.Kept, st.Fillers, st.Nodes, dev.Size(), src.Size(),
		100*float64(dev.Size())/float64(src.Size()))
	return 0
}

// watchSaturation polls the scheduler's rejection counter and flips the
// health endpoint into a degraded state while admission is saturating:
// three consecutive intervals with fresh rejections degrade, one clean
// interval clears.
func watchSaturation(health *telemetry.Health, reg *telemetry.Registry, flight *telemetry.FlightRecorder) {
	rejected := reg.Counter("serve.sched.rejected")
	last := rejected.Value()
	streak := 0
	for range time.Tick(time.Second) {
		now := rejected.Value()
		if now > last {
			streak++
			if streak == 3 {
				health.Degrade("saturation", fmt.Sprintf("admission rejections sustained for %ds (total %d)", streak, now))
				flight.Record(telemetry.FlightEvent{Kind: "degraded", Value: now, Detail: "sustained admission saturation"})
			}
		} else {
			if streak >= 3 {
				health.Clear("saturation")
			}
			streak = 0
		}
		last = now
	}
}

// runSimulation continues the droplet workload from the restored
// committed step, publishing every new commit into the catalog. It is
// the single writer; readers keep serving pinned versions concurrently.
func runSimulation(tree *pmoctree.Tree, cat *serve.Catalog, steps, maxLevel int, pause time.Duration) {
	if steps <= 0 {
		return
	}
	start := int(tree.CommittedStep())
	d := pmoctree.NewDroplet(pmoctree.DropletConfig{Steps: start + steps + 10})
	tree.SetFeatures(pmoctree.WorkloadFeature(d, start+1))
	for s := start + 1; s <= start+steps; s++ {
		pmoctree.Step(tree, d, s, uint8(maxLevel))
		tree.SetFeatures(pmoctree.WorkloadFeature(d, s+1))
		tree.Persist()
		if snap, err := cat.Publish(); err == nil {
			snap.Close()
		} else {
			fmt.Fprintf(os.Stderr, "pmserve: publish step %d: %v\n", s, err)
			return
		}
		time.Sleep(pause)
	}
}

// runScript executes each request path from a JSON string array against
// the handler over a loopback listener and prints one
// "<status> <compact-json-body>" line per request.
func runScript(h http.Handler, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var paths []string
	if err := json.Unmarshal(raw, &paths); err != nil {
		return fmt.Errorf("script %s: %w (want a JSON array of request paths)", path, err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	for _, p := range paths {
		resp, err := http.Get(base + p)
		if err != nil {
			return fmt.Errorf("GET %s: %w", p, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("GET %s: %w", p, err)
		}
		fmt.Printf("%d %s\n", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}
