// Command droplet runs one of the paper's motivating workloads — droplet
// ejection in inkjet printing (§5.1, the default), droplet impact on a
// solid surface, or rapid boiling flow — on a PM-octree, persisting every
// step and reporting per-step meshing statistics, version overlap, and
// memory behavior. With -image, the persistent region is written to a
// device image file at the end, from which cmd/meshstat or a later run
// can restore.
//
// -trace and -metrics export the run's telemetry (Chrome trace_event
// timeline and per-step JSONL records); -debug serves expvar, the metrics
// registry and pprof over HTTP while the run executes.
//
// -chaos <seed> runs the fault-injection soak instead: the workload steps
// under seeded torn power cuts, bit-rot, wear-out, and lossy replica
// shipping, recovering every crash through scrub, multi-version fallback,
// and replica failover, and exits nonzero if any recovery lands on a
// state that was never committed.
//
// -pipeline <n> moves persistence off the step's critical path: up to n
// commits ride a background persist worker, with -groupcommit coalescing
// adjacent step deltas into one durable commit. -chaospipeline <seed>
// soaks that pipeline under power cuts at every stage.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"pmoctree"
	"pmoctree/internal/fault"
	"pmoctree/internal/telemetry"
)

func main() {
	var (
		steps       = flag.Int("steps", 30, "time steps to simulate")
		maxLevel    = flag.Int("maxlevel", 5, "maximum refinement level")
		jets        = flag.Int("jets", 1, "number of nozzles (printhead width; ejection only)")
		workload    = flag.String("workload", "ejection", "scenario: ejection | impact | boiling")
		budget      = flag.Int("c0", 2048, "DRAM budget for the C0 tree, in octants")
		image       = flag.String("image", "", "write the final NVBM region image to this file")
		vtk         = flag.String("vtk", "", "write the final mesh as a legacy VTK unstructured grid")
		autotune    = flag.Bool("autotune", false, "let the C0 budget adapt to merge pressure")
		quiet       = flag.Bool("q", false, "suppress the per-step table")
		tracePath   = flag.String("trace", "", "write a Chrome trace_event timeline to `file`")
		metricsPath = flag.String("metrics", "", "write per-step JSONL records to `file`")
		debugAddr   = flag.String("debug", "", "serve expvar/metrics/pprof on `addr` (e.g. localhost:6060)")
		workers     = flag.Int("workers", 0, "worker-pool width for predicate/solve evaluation (0 = GOMAXPROCS); results are identical for any value")
		bulkInit    = flag.Bool("bulkinit", false, "build the first step's mesh by bulk construction from Morton codes instead of incremental refinement (bit-identical result)")
		chaosSeed   = flag.Int64("chaos", 0, "run the chaos soak with this fault-injection `seed` (nonzero) instead of a clean run")
		retain      = flag.Int("retain", 0, "extra committed versions to retain in the fallback ring (0..2); gives cmd/pmserve -history older versions to serve")
		chaosQuery  = flag.Int("chaosreaders", 0, "with -chaos: run this many concurrent MVCC snapshot readers against pinned versions during the soak")
		chaosFlight = flag.String("chaosflight", "", "with -chaos: write the soak's flight-recorder ring (commits, crashes, restores, scrubs) as JSONL to `file`")
		cacheReads  = flag.Bool("cachecommitted", false, "let the decoded-octant cache skip device reads of committed octants (simulation state is identical; modeled NVBM read counts drop, so leave off when reproducing the paper's figures)")
		pipeline    = flag.Int("pipeline", 0, "persist versions asynchronously, allowing up to `n` commits in flight (0 = synchronous; at most 3 minus -retain)")
		groupCommit = flag.Int("groupcommit", 1, "with -pipeline: coalesce up to `k` step deltas into one durable commit")
		chaosPipe   = flag.Int64("chaospipeline", 0, "run the pipelined chaos soak with this `seed` (nonzero): power cuts at every persist-pipeline stage, recovery checked against the enqueued-version history")
	)
	flag.Parse()

	if *chaosPipe != 0 {
		var fr *telemetry.FlightRecorder
		if *chaosFlight != "" {
			fr = telemetry.NewFlightRecorder(4096)
		}
		depth := *pipeline
		if depth <= 0 {
			depth = 3
		}
		rep, err := fault.RunPipeline(fault.PipelineChaosConfig{
			Seed:          *chaosPipe,
			Steps:         *steps,
			MaxLevel:      uint8(*maxLevel),
			DRAMBudget:    *budget,
			PipelineDepth: depth,
			GroupCommit:   *groupCommit,
			Recorder:      fr,
		})
		if *chaosFlight != "" {
			if derr := fr.DumpFile(*chaosFlight); derr != nil {
				fmt.Fprintf(os.Stderr, "droplet: flight dump: %v\n", derr)
			}
		}
		fmt.Print(rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "droplet: pipelined chaos run FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("pipelined chaos run passed: every crash recovered to an enqueued version")
		return
	}

	if *chaosSeed != 0 {
		var qs fault.QueryStats
		var fr *telemetry.FlightRecorder
		if *chaosFlight != "" {
			fr = telemetry.NewFlightRecorder(4096)
		}
		rep, err := fault.Run(fault.ChaosConfig{
			Seed:                *chaosSeed,
			Steps:               *steps,
			MaxLevel:            uint8(*maxLevel),
			DRAMBudget:          *budget,
			CacheCommittedReads: *cacheReads,
			QueryReaders:        *chaosQuery,
			QueryStats:          &qs,
			Recorder:            fr,
		})
		if *chaosFlight != "" {
			if derr := fr.DumpFile(*chaosFlight); derr != nil {
				fmt.Fprintf(os.Stderr, "droplet: flight dump: %v\n", derr)
			}
		}
		fmt.Print(rep)
		if *chaosQuery > 0 {
			fmt.Printf("  queries: readers=%d batches=%d served=%d aborted=%d mismatches=%d catalog_rebinds=%d\n",
				qs.Readers, qs.Batches, qs.Served, qs.Aborted, qs.Mismatches, qs.Generations)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "droplet: chaos run FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("chaos run passed: every crash recovered to a committed version")
		return
	}

	pool := pmoctree.NewWorkerPool(*workers)

	nv := pmoctree.NewNVBM()
	cfg := pmoctree.Config{
		NVBMDevice:          nv,
		DRAMBudgetOctants:   *budget,
		CacheCommittedReads: *cacheReads,
		RetainVersions:      *retain,
		PipelineDepth:       *pipeline,
		GroupCommit:         *groupCommit,
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "droplet: %v\n", err)
		os.Exit(2)
	}
	tree := pmoctree.Create(cfg)

	var obs *telemetry.Observer
	if *tracePath != "" || *metricsPath != "" || *debugAddr != "" {
		obs = telemetry.NewObserver()
		tree.SetTracer(obs.TracerFor(0, telemetry.DeviceProbe(nv)))
		tree.RegisterMetrics(obs.Metrics, "droplet")
		pool.Instrument(obs.Metrics, "droplet.pool")
		if *debugAddr != "" {
			dbg, err := telemetry.StartDebugServer(*debugAddr, obs.Metrics)
			if err != nil {
				fmt.Fprintf(os.Stderr, "droplet: %v\n", err)
				os.Exit(1)
			}
			defer dbg.Close()
			fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/metrics (also /metrics, /debug/vars, /debug/pprof/)\n", dbg.Addr())
		}
	}
	var d pmoctree.Workload
	switch *workload {
	case "ejection":
		d = pmoctree.NewDroplet(pmoctree.DropletConfig{Steps: *steps + 10, Jets: *jets})
	case "impact":
		d = pmoctree.NewDropImpact(pmoctree.ImpactConfig{Steps: *steps + 10})
	case "boiling":
		d = pmoctree.NewBoiling(pmoctree.BoilingConfig{Steps: *steps + 10, Seed: 42})
	default:
		fmt.Fprintf(os.Stderr, "droplet: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if !*quiet {
		fmt.Fprintln(w, "step\telements\trefined\tcoarsened\tbalanced\tsolved\toverlap\tNVBM writes")
	}
	var lastWrites uint64
	var tuner *pmoctree.AutoTuner
	if *autotune {
		tuner = pmoctree.NewAutoTuner(64, 1<<20)
	}
	tree.SetFeatures(pmoctree.WorkloadFeature(d, 1))
	prevNV := nv.Stats()
	prevOps := tree.Stats()
	for s := 1; s <= *steps; s++ {
		mark := obs.Mark()
		var sc pmoctree.StepCounts
		if ok := false; *bulkInit && s == 1 {
			if sc, ok = pmoctree.ConstructInitialStep(tree, d, s, uint8(*maxLevel), pool); !ok {
				sc = pmoctree.StepPool(tree, d, s, uint8(*maxLevel), pool)
			}
		} else {
			sc = pmoctree.StepPool(tree, d, s, uint8(*maxLevel), pool)
		}
		vs := tree.VersionStats()
		writes := nv.Stats().Writes
		if !*quiet {
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%.1f%%\t%d\n",
				s, sc.Leaves, sc.Refined, sc.Coarsened, sc.Balanced, sc.Solved,
				vs.OverlapRatio*100, writes-lastWrites)
		}
		lastWrites = writes
		tree.SetFeatures(pmoctree.WorkloadFeature(d, s+1))
		tree.Persist()
		if obs != nil {
			rec := telemetry.StepFromEvents(s, obs.EventsFrom(mark))
			ops := tree.Stats()
			nvNow := nv.Stats()
			dnv := nvNow.Sub(prevNV)
			rec.Elements = sc.Leaves
			rec.Octants = vs.CurOctants
			rec.Overlap = vs.OverlapRatio
			rec.Expansion = vs.ExpansionFactor
			rec.NVBMReads = dnv.Reads
			rec.NVBMWrites = dnv.Writes
			rec.Merges = uint64(ops.Merges - prevOps.Merges)
			rec.GCFreed = uint64(ops.GCFreed - prevOps.GCFreed)
			rec.Copies = uint64(ops.Copies - prevOps.Copies)
			prevNV, prevOps = nvNow, ops
			obs.RecordStep(rec)
		}
		if tuner != nil {
			tuner.Observe(tree)
		}
	}
	// Durability barrier: with -pipeline, commits may still be in flight on
	// the persist worker; the image and final stats must see them landed.
	tree.Flush()
	w.Flush()

	if *tracePath != "" {
		if err := writeFileWith(*tracePath, obs.WriteTrace); err != nil {
			fmt.Fprintf(os.Stderr, "droplet: %v\n", err)
			os.Exit(1)
		}
	}
	if *metricsPath != "" {
		if err := writeFileWith(*metricsPath, obs.WriteSteps); err != nil {
			fmt.Fprintf(os.Stderr, "droplet: %v\n", err)
			os.Exit(1)
		}
	}

	hm := pmoctree.Extract(tree.ForEachLeaf)
	st := tree.Stats()
	fmt.Printf("\nfinal mesh: %d elements, %d vertices (%d anchored, %d dangling)\n",
		len(hm.Elements), len(hm.Vertices), hm.AnchoredCount(), hm.DanglingCount())
	fmt.Printf("octree ops: %d refines, %d coarsens, %d COW copies, %d merges, %d GC passes (%d freed), %d transforms\n",
		st.Refines, st.Coarsens, st.Copies, st.Merges, st.GCs, st.GCFreed, st.Transforms)
	fmt.Printf("NVBM: %v; wear imbalance %.2f\n", nv.Stats(), nv.Wear().WearImbalance())
	if *pipeline > 0 {
		ps := tree.PipelineStats()
		fmt.Printf("pipeline: %d enqueued, %d commits (%d coalesced), %d stalls\n",
			ps.Enqueued, ps.Committed, ps.Coalesced, ps.Stalls)
	}
	if tuner != nil {
		fmt.Printf("autotune: %d adjustments, final C0 budget %d octants (peak util %.0f%%)\n",
			tuner.Adjustments, tree.DRAMBudget(), tree.LastPeakDRAMUtilization()*100)
	}

	if *vtk != "" {
		f, err := os.Create(*vtk)
		if err != nil {
			fmt.Fprintf(os.Stderr, "droplet: %v\n", err)
			os.Exit(1)
		}
		if err := hm.WriteVTK(f, "droplet ejection final mesh"); err != nil {
			fmt.Fprintf(os.Stderr, "droplet: writing VTK: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("mesh written to %s\n", *vtk)
	}
	if *image != "" {
		if err := nv.PersistFile(*image); err != nil {
			fmt.Fprintf(os.Stderr, "droplet: writing image: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("persistent region written to %s\n", *image)
	}
}

// writeFileWith creates path and fills it with one writer callback.
func writeFileWith(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
