// Benchmarks, one per table and figure of the paper's evaluation (§5),
// plus ablations of the design decisions DESIGN.md calls out. Each
// benchmark reports modeled nanoseconds or NVBM writes as custom metrics
// alongside wall-clock time, so `go test -bench=. -benchmem` regenerates
// the experiment the corresponding figure is built from.
package pmoctree_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"pmoctree"
	"pmoctree/internal/cluster"
	"pmoctree/internal/core"
	"pmoctree/internal/experiments"
	"pmoctree/internal/morton"
	"pmoctree/internal/nvbm"
	"pmoctree/internal/recovery"
	"pmoctree/internal/sim"
	"pmoctree/internal/solver"
)

// benchScale trims the default experiment scale so one benchmark
// iteration stays under ~100ms.
func benchScale() experiments.Scale {
	s := experiments.DefaultScale()
	s.Fig3Steps = 5
	s.WeakRanks = []int{1, 4}
	s.WeakMaxLevel = 4
	s.WeakSteps = 1
	s.StrongRanks = []int{2, 8}
	s.StrongJets = 4
	s.StrongMaxLevel = 4
	s.StrongSteps = 1
	s.Fig10Budgets = []int{64, 512}
	s.Fig10Ranks = 1
	s.Fig10MaxLevel = 4
	s.Fig10Steps = 2
	s.Fig11Levels = []uint8{4}
	s.Fig11Ranks = 1
	s.Fig11Steps = 3
	s.WriteMixSteps = 3
	s.WriteMixMaxLevel = 4
	s.RecoveryCrashStep = 12
	s.RecoveryMaxLevel = 4
	return s
}

// --- Table 2: the memory model itself ---

func BenchmarkTable2DeviceAccess(b *testing.B) {
	for _, kind := range []nvbm.Kind{nvbm.DRAM, nvbm.NVBM} {
		b.Run(kind.String(), func(b *testing.B) {
			dev := nvbm.New(kind, 4096)
			buf := make([]byte, 88)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dev.WriteAt(0, buf)
				dev.ReadAt(0, buf)
			}
			b.ReportMetric(float64(dev.Stats().ModeledNs)/float64(b.N), "modeled-ns/op")
		})
	}
}

// --- §1: write share of meshing accesses ---

func BenchmarkWriteMix(b *testing.B) {
	sc := benchScale()
	var avg float64
	for i := 0; i < b.N; i++ {
		avg = experiments.WriteMix(sc, nil).Avg
	}
	b.ReportMetric(avg*100, "write-%")
}

// --- Figure 3: overlap ratio and memory per 1000 octants ---

func BenchmarkFig3Overlap(b *testing.B) {
	sc := benchScale()
	var last experiments.Fig3Row
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3(sc, nil)
		last = rows[len(rows)-1]
	}
	b.ReportMetric(last.Overlap*100, "overlap-%")
	b.ReportMetric(last.MemPerK, "B/1k-octants")
}

// --- Figure 5: layout transformation write savings ---

func BenchmarkFig5Layout(b *testing.B) {
	var res experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig5(nil)
	}
	b.ReportMetric(float64(res.ObliviousWrites), "oblivious-writes")
	b.ReportMetric(float64(res.AwareWrites), "aware-writes")
}

// --- Figures 6/7: weak scaling ---

func BenchmarkFig6WeakScaling(b *testing.B) {
	sc := benchScale()
	for _, impl := range []cluster.Impl{cluster.PMOctree, cluster.InCore, cluster.OutOfCore} {
		b.Run(string(impl), func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				res := cluster.Run(cluster.Config{
					Ranks: sc.WeakRanks[len(sc.WeakRanks)-1], Impl: impl,
					MaxLevel: sc.WeakMaxLevel, Steps: sc.WeakSteps, Seed: 1,
				})
				secs = res.Total.TotalSeconds()
			}
			b.ReportMetric(secs*1000, "modeled-ms")
		})
	}
}

// --- Figure 8: strong scaling of PM-octree ---

func BenchmarkFig8StrongScaling(b *testing.B) {
	sc := benchScale()
	for _, ranks := range sc.StrongRanks {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				res := cluster.Run(cluster.Config{
					Ranks: ranks, Jets: sc.StrongJets, Impl: cluster.PMOctree,
					MaxLevel: sc.StrongMaxLevel, Steps: sc.StrongSteps, Seed: 1,
				})
				secs = res.Total.TotalSeconds()
			}
			b.ReportMetric(secs*1000, "modeled-ms")
		})
	}
}

// --- Figure 9: strong-scaling comparison ---

func BenchmarkFig9Comparison(b *testing.B) {
	sc := benchScale()
	ranks := sc.StrongRanks[len(sc.StrongRanks)-1]
	for _, impl := range []cluster.Impl{cluster.PMOctree, cluster.InCore, cluster.OutOfCore} {
		b.Run(string(impl), func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				res := cluster.Run(cluster.Config{
					Ranks: ranks, Jets: sc.StrongJets, Impl: impl,
					MaxLevel: sc.StrongMaxLevel, Steps: sc.StrongSteps, Seed: 1,
				})
				secs = res.Total.TotalSeconds()
			}
			b.ReportMetric(secs*1000, "modeled-ms")
		})
	}
}

// --- Figure 10: DRAM size for the C0 tree ---

func BenchmarkFig10DRAMSize(b *testing.B) {
	sc := benchScale()
	for _, budget := range sc.Fig10Budgets {
		b.Run(fmt.Sprintf("c0=%d", budget), func(b *testing.B) {
			var secs float64
			var merges int
			for i := 0; i < b.N; i++ {
				res := cluster.Run(cluster.Config{
					Ranks: sc.Fig10Ranks, Impl: cluster.PMOctree,
					MaxLevel: sc.Fig10MaxLevel, Steps: sc.Fig10Steps,
					DRAMBudgetOctants: budget, Seed: 1,
				})
				secs = res.Total.TotalSeconds()
				merges = res.PM.Merges
			}
			b.ReportMetric(secs*1000, "modeled-ms")
			b.ReportMetric(float64(merges), "merges")
		})
	}
}

// --- Figure 11: dynamic transformation on/off ---

func BenchmarkFig11Transform(b *testing.B) {
	sc := benchScale()
	for _, disable := range []bool{true, false} {
		name := "on"
		if disable {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			var writes uint64
			for i := 0; i < b.N; i++ {
				res := cluster.Run(cluster.Config{
					Ranks: sc.Fig11Ranks, Impl: cluster.PMOctree,
					MaxLevel: sc.Fig11Levels[0], Steps: sc.Fig11Steps,
					DRAMBudgetOctants: 64, DropletSteps: 30,
					DisableTransform: disable, Seed: 1,
				})
				writes = res.NVBM.Writes
			}
			b.ReportMetric(float64(writes), "nvbm-writes")
		})
	}
}

// --- §5.6: failure recovery ---

func BenchmarkRecovery(b *testing.B) {
	sc := benchScale()
	for _, impl := range []cluster.Impl{cluster.InCore, cluster.PMOctree, cluster.OutOfCore} {
		b.Run(string(impl), func(b *testing.B) {
			var restart float64
			for i := 0; i < b.N; i++ {
				rep, err := recovery.Run(recovery.Config{
					Impl: impl, SameNode: true,
					CrashStep: sc.RecoveryCrashStep, MaxLevel: sc.RecoveryMaxLevel,
				})
				if err != nil {
					b.Fatal(err)
				}
				restart = rep.RestartNs
			}
			b.ReportMetric(restart/1e3, "restart-us")
		})
	}
}

// --- Ablation: handle dereference vs native pointer chase (design 1) ---

func BenchmarkAblationHandleDeref(b *testing.B) {
	b.Run("arena-handle", func(b *testing.B) {
		tree := core.Create(core.Config{})
		tree.RefineWhere(func(morton.Code) bool { return true }, 3)
		code := morton.Root.Child(7).Child(7).Child(7)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if tree.Find(code).IsNil() {
				b.Fatal("lost octant")
			}
		}
	})
	b.Run("native-pointer", func(b *testing.B) {
		tree := pmoctree.NewPointerOctree()
		tree.RefineWhere(func(morton.Code) bool { return true }, 3)
		code := morton.Root.Child(7).Child(7).Child(7)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if tree.Find(code) == nil {
				b.Fatal("lost octant")
			}
		}
	})
}

// --- Ablation: deferred deletion + mark-and-sweep GC (design 3) ---

func BenchmarkAblationGC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tree := core.Create(core.Config{DRAMBudgetOctants: 1})
		tree.RefineWhere(func(morton.Code) bool { return true }, 3)
		tree.CoarsenWhere(func(c morton.Code) bool { return c.Level() >= 1 })
		b.StartTimer()
		tree.GC()
	}
}

// --- Ablation: feature-directed sampling cost (design 5) ---

func BenchmarkAblationSampling(b *testing.B) {
	tree := core.Create(core.Config{DRAMBudgetOctants: 256})
	tree.SetFeatures(func(c morton.Code, _ [core.DataWords]float64) bool {
		x, _, _ := c.Center()
		return x > 0.5
	})
	tree.RefineWhere(func(morton.Code) bool { return true }, 4)
	tree.Persist()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Retarget()
	}
}

// --- Ablation: 26-neighbor linear-octree balance vs pointer balance ---

func BenchmarkAblationBalance(b *testing.B) {
	shell := func(c morton.Code) bool {
		x, y, z := c.Center()
		h := c.Extent()
		d := (x-0.5)*(x-0.5) + (y-0.5)*(y-0.5) + (z-0.5)*(z-0.5)
		lo := 0.3 - h
		if lo < 0 {
			lo = 0
		}
		hi := 0.3 + h
		return d >= lo*lo && d <= hi*hi
	}
	b.Run("pm-octree-faces", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tree := core.Create(core.Config{})
			tree.RefineWhere(shell, 4)
			b.StartTimer()
			tree.Balance()
		}
	})
	b.Run("etree-26-neighbors", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tree := pmoctree.NewOutOfCoreMesh(pmoctree.NewNVBM())
			tree.RefineWhere(shell, 4)
			b.StartTimer()
			tree.Balance()
		}
	})
}

// --- Micro: the commit path ---

func BenchmarkPersist(b *testing.B) {
	tree := core.Create(core.Config{})
	d := sim.NewDroplet(sim.DropletConfig{Steps: b.N + 10})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step(tree, d, i+1, 4)
		tree.Persist()
	}
}

// --- Pipelined commit: sync vs async vs group commit ---

// BenchmarkStepPipelined steps the droplet workload to the same
// committed-version count under each persistence mode, with the modeled
// NVBM latency injected as real delay so writeback cost is wall-clock
// visible. ns/op is the whole run (steps + persists + the final Flush, so
// async modes pay for full durability); persist-ns/step is the share the
// stepping thread spends inside Persist — the commit path the pipeline
// exists to shorten. Async must come in below sync on both.
func BenchmarkStepPipelined(b *testing.B) {
	modes := []struct {
		name         string
		depth, group int
	}{
		{"sync", 0, 0},
		{"async-k1", 3, 1},
		{"async-k2", 3, 2},
		{"async-k4", 3, 4},
	}
	const steps = 8
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			var persistNs int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dev := nvbm.New(nvbm.NVBM, 0)
				dev.SetDelayInjection(true)
				tree := core.Create(core.Config{
					NVBMDevice:          dev,
					DRAMDevice:          nvbm.New(nvbm.DRAM, 0),
					DRAMBudgetOctants:   2048,
					CacheCommittedReads: true,
					PipelineDepth:       m.depth,
					GroupCommit:         m.group,
					Seed:                9,
				})
				d := sim.NewDroplet(sim.DropletConfig{Steps: steps + 10})
				tree.SetFeatures(d.Feature(1))
				b.StartTimer()
				for s := 1; s <= steps; s++ {
					sim.Step(tree, d, s, 4)
					tree.SetFeatures(d.Feature(s + 1))
					p0 := time.Now()
					tree.Persist()
					persistNs += time.Since(p0).Nanoseconds()
				}
				tree.Flush()
				b.StopTimer()
				tree.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(persistNs)/float64(b.N*steps), "persist-ns/step")
		})
	}
}

// --- Micro: restore cost vs snapshot reload ---

func BenchmarkRestore(b *testing.B) {
	nv := nvbm.New(nvbm.NVBM, 0)
	tree := core.Create(core.Config{NVBMDevice: nv})
	tree.RefineWhere(func(morton.Code) bool { return true }, 3)
	tree.Persist()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Restore(core.Config{NVBMDevice: nv}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: two-version retention vs deferred GC (design 2) ---

func BenchmarkAblationGCDeferral(b *testing.B) {
	for _, every := range []int{1, 4} {
		b.Run(fmt.Sprintf("gc-every-%d", every), func(b *testing.B) {
			var peak float64
			for i := 0; i < b.N; i++ {
				tree := core.Create(core.Config{GCEvery: every, Seed: 2})
				d := sim.NewDroplet(sim.DropletConfig{Steps: 20})
				for s := 1; s <= 6; s++ {
					sim.Step(tree, d, s, 4)
					tree.Persist()
					if e := tree.VersionStats().ExpansionFactor; e > peak {
						peak = e
					}
				}
			}
			b.ReportMetric(peak, "peak-expansion-x")
		})
	}
}

// --- Micro: multigrid V-cycles vs preconditioned CG ---

func BenchmarkSolverMGvsCG(b *testing.B) {
	mg, err := solver.NewUniformMultigrid(4)
	if err != nil {
		b.Fatal(err)
	}
	s := mg.Fine()
	n := s.N()
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		x, y, z := s.Center(i)
		rhs[i] = x*y + z
	}
	b.Run("multigrid", func(b *testing.B) {
		var iters int
		for i := 0; i < b.N; i++ {
			x := make([]float64, n)
			res, err := mg.Solve(rhs, x, solver.Options{Tol: 1e-8})
			if err != nil || !res.Converged {
				b.Fatal(res, err)
			}
			iters = res.Iterations
		}
		b.ReportMetric(float64(iters), "v-cycles")
	})
	b.Run("cg", func(b *testing.B) {
		var iters int
		for i := 0; i < b.N; i++ {
			x := make([]float64, n)
			res, err := s.Solve(rhs, x, solver.Options{Tol: 1e-8})
			if err != nil || !res.Converged {
				b.Fatal(res, err)
			}
			iters = res.Iterations
		}
		b.ReportMetric(float64(iters), "iterations")
	})
}

// --- Octant fast path: repeated leaf sweeps + refine pass (walk vs index) ---

// benchSink keeps the leaf-sweep reductions below observable.
var benchSink float64

// benchFastPathRegion resolves a spherical interface, like the droplet
// surface: refine every octant whose box straddles the radius-0.3 shell.
func benchFastPathRegion(c morton.Code) bool {
	x, y, z := c.Center()
	d := math.Sqrt((x-0.5)*(x-0.5) + (y-0.5)*(y-0.5) + (z-0.5)*(z-0.5))
	return math.Abs(d-0.3) < c.Extent()
}

// BenchmarkLeafWalkRefine measures the walk-heavy inner loop of a
// simulation step: one refinement pass over the committed mesh followed
// by six full leaf sweeps (predicate evaluation, solve, advect and
// output passes all iterate the leaves), with the tree resident in NVBM
// behind a small C0 budget. "walk" pays a charged decode walk per sweep —
// the pre-fast-path behavior; "indexed" iterates the Z-order leaf
// snapshot, rebuilt at most once per mutation. The leaf sums agree
// bit-for-bit; only the traversal machinery differs.
func BenchmarkLeafWalkRefine(b *testing.B) {
	const sweeps = 6
	build := func(cached bool) *core.Tree {
		tree := core.Create(core.Config{DRAMBudgetOctants: 64, CacheCommittedReads: cached})
		tree.RefineWhere(benchFastPathRegion, 5)
		tree.Balance()
		tree.Persist()
		return tree
	}
	b.Run("walk", func(b *testing.B) {
		tree := build(false)
		var sum float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tree.RefineWhere(benchFastPathRegion, 5) // steady state: full walk, zero splits
			for s := 0; s < sweeps; s++ {
				tree.ForEachLeaf(func(_ morton.Code, data [core.DataWords]float64) bool {
					sum += data[0]
					return true
				})
			}
		}
		benchSink = sum
		b.ReportMetric(float64(tree.LeafCount()), "leaves")
	})
	b.Run("indexed", func(b *testing.B) {
		tree := build(true)
		var sum float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tree.RefineWhere(benchFastPathRegion, 5)
			for s := 0; s < sweeps; s++ {
				for _, e := range tree.LeafSnapshot() {
					sum += e.Data[0]
				}
			}
		}
		benchSink = sum
		b.ReportMetric(float64(tree.LeafCount()), "leaves")
	})
}
