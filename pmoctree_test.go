package pmoctree_test

import (
	"testing"

	"pmoctree"
)

// TestPublicAPIEndToEnd drives the whole public surface: create, mesh,
// solve, persist, crash, restore, extract.
func TestPublicAPIEndToEnd(t *testing.T) {
	nv := pmoctree.NewNVBM()
	dram := pmoctree.NewDRAM()
	tree := pmoctree.Create(pmoctree.Config{NVBMDevice: nv, DRAMDevice: dram})

	d := pmoctree.NewDroplet(pmoctree.DropletConfig{Steps: 50})
	tree.SetFeatures(d.Feature(1))
	for s := 1; s <= 3; s++ {
		sc := pmoctree.Step(tree, d, s, 4)
		if sc.Leaves == 0 {
			t.Fatalf("step %d produced no mesh", s)
		}
		tree.SetFeatures(d.Feature(s + 1))
		tree.Persist()
	}
	want := tree.LeafCount()

	// Extract a hex mesh for analysis.
	hm := pmoctree.Extract(tree.ForEachLeaf)
	if len(hm.Elements) != want {
		t.Errorf("extracted %d elements, mesh has %d leaves", len(hm.Elements), want)
	}
	if err := hm.Validate(); err != nil {
		t.Fatal(err)
	}

	// Crash and restore.
	tree.RefineWhere(func(pmoctree.Code) bool { return true }, 5) // doomed work
	dram.Crash()
	restored, err := pmoctree.Restore(pmoctree.Config{NVBMDevice: nv})
	if err != nil {
		t.Fatal(err)
	}
	if restored.LeafCount() != want {
		t.Errorf("restored %d leaves, want %d", restored.LeafCount(), want)
	}
}

// TestBaselinesSatisfyAdaptiveMesh checks all three implementations run
// the same workload through the shared interface.
func TestBaselinesSatisfyAdaptiveMesh(t *testing.T) {
	d := pmoctree.NewDroplet(pmoctree.DropletConfig{Steps: 50})
	meshes := map[string]pmoctree.AdaptiveMesh{
		"pm":     pmoctree.Create(pmoctree.Config{}),
		"incore": pmoctree.NewInCoreMesh(pmoctree.NewNVBM()),
		"etree":  pmoctree.NewOutOfCoreMesh(pmoctree.NewNVBM()),
	}
	counts := map[string]int{}
	for name, m := range meshes {
		pmoctree.Step(m, d, 1, 3)
		counts[name] = m.LeafCount()
	}
	if counts["pm"] != counts["incore"] {
		t.Errorf("pm %d vs incore %d leaves", counts["pm"], counts["incore"])
	}
}

func TestDeviceFilePersistence(t *testing.T) {
	nv := pmoctree.NewNVBM()
	tree := pmoctree.Create(pmoctree.Config{NVBMDevice: nv})
	tree.RefineWhere(func(c pmoctree.Code) bool { return c.Level() < 2 }, 2)
	tree.Persist()

	path := t.TempDir() + "/region.img"
	if err := nv.PersistFile(path); err != nil {
		t.Fatal(err)
	}
	dev, err := pmoctree.OpenDeviceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	re, err := pmoctree.Restore(pmoctree.Config{NVBMDevice: dev})
	if err != nil {
		t.Fatal(err)
	}
	if re.LeafCount() != 64 {
		t.Errorf("restored %d leaves", re.LeafCount())
	}
}

func TestEncodeHelper(t *testing.T) {
	c := pmoctree.Encode(1, 2, 3, 2)
	if c.Level() != 2 {
		t.Errorf("level = %d", c.Level())
	}
	if pmoctree.Root.Level() != 0 {
		t.Error("root level != 0")
	}
}

// TestFacadeSurface exercises the remaining public wrappers end to end:
// all three workloads, the auto-tuner, the out-of-core reopen path, and
// the flow solver.
func TestFacadeSurface(t *testing.T) {
	// Workloads through the shared driver.
	for name, w := range map[string]pmoctree.Workload{
		"impact":  pmoctree.NewDropImpact(pmoctree.ImpactConfig{Steps: 20}),
		"boiling": pmoctree.NewBoiling(pmoctree.BoilingConfig{Steps: 20, Seed: 5}),
	} {
		tree := pmoctree.Create(pmoctree.Config{})
		tree.SetFeatures(pmoctree.WorkloadFeature(w, 1))
		if sc := pmoctree.Step(tree, w, 2, 4); sc.Leaves == 0 {
			t.Errorf("%s: empty mesh", name)
		}
		tree.Persist()
	}

	// Auto-tuner on a pressured tree.
	tree := pmoctree.Create(pmoctree.Config{DRAMBudgetOctants: 32})
	tuner := pmoctree.NewAutoTuner(16, 4096)
	d := pmoctree.NewDroplet(pmoctree.DropletConfig{Steps: 20})
	pmoctree.Step(tree, d, 1, 4)
	tree.Persist()
	if got := tuner.Observe(tree); got < 16 {
		t.Errorf("tuned budget %d below min", got)
	}

	// Out-of-core reopen.
	dev := pmoctree.NewNVBM()
	oc := pmoctree.NewOutOfCoreMesh(dev)
	oc.RefineWhere(func(c pmoctree.Code) bool { return c.Level() < 1 }, 1)
	re, err := pmoctree.OpenOutOfCoreMesh(dev)
	if err != nil {
		t.Fatal(err)
	}
	if re.LeafCount() != 8 {
		t.Errorf("reopened %d leaves", re.LeafCount())
	}

	// Pointer octree + flow state.
	po := pmoctree.NewPointerOctree()
	po.RefineWhere(func(c pmoctree.Code) bool { return c.Level() < 2 }, 2)
	sys, err := pmoctree.BuildPoisson(po.LeafCodes())
	if err != nil {
		t.Fatal(err)
	}
	st := pmoctree.NewFlowState(sys)
	st.VOF[0] = 1
	if _, err := st.Step(1e-3); err != nil {
		t.Fatal(err)
	}
	if st.LiquidVolume() <= 0 {
		t.Error("flow state lost its liquid")
	}
}
